"""PLIC: priorities, thresholds, claim/complete protocol."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.plic import Plic


@pytest.fixture
def plic():
    plic = Plic(source_count=8, context_count=2)
    for source in (1, 2, 3):
        plic.set_priority(source, source)  # priority == source id
        plic.enable(0, source)
    return plic


class TestBasicRouting:
    def test_no_pending_initially(self, plic):
        assert not plic.external_pending(0)
        assert plic.claim(0) == 0

    def test_raise_then_claim(self, plic):
        plic.raise_irq(2)
        assert plic.external_pending(0)
        assert plic.claim(0) == 2
        assert not plic.external_pending(0)

    def test_highest_priority_claims_first(self, plic):
        plic.raise_irq(1)
        plic.raise_irq(3)
        plic.raise_irq(2)
        assert plic.claim(0) == 3
        assert plic.claim(0) == 2
        assert plic.claim(0) == 1

    def test_disabled_source_invisible(self, plic):
        plic.raise_irq(1)
        plic.disable(0, 1)
        assert not plic.external_pending(0)
        plic.enable(0, 1)
        assert plic.external_pending(0)

    def test_context_isolation(self, plic):
        plic.raise_irq(1)
        assert not plic.external_pending(1)  # context 1 enabled nothing
        plic.enable(1, 1)
        assert plic.external_pending(1)


class TestThreshold:
    def test_threshold_masks_low_priority(self, plic):
        plic.set_threshold(0, 2)
        plic.raise_irq(1)  # priority 1 <= threshold 2
        assert not plic.external_pending(0)
        plic.raise_irq(3)
        assert plic.claim(0) == 3

    def test_zero_priority_never_fires(self, plic):
        plic.set_priority(4, 0)
        plic.enable(0, 4)
        plic.raise_irq(4)
        assert not plic.external_pending(0)


class TestClaimComplete:
    def test_claimed_source_does_not_refire_until_complete(self, plic):
        plic.raise_irq(2)
        assert plic.claim(0) == 2
        plic.raise_irq(2)  # device re-raises while in-flight: latched out
        assert plic.claim(0) == 0
        plic.complete(0, 2)
        plic.raise_irq(2)
        assert plic.claim(0) == 2

    def test_complete_of_unclaimed_rejected(self, plic):
        with pytest.raises(ConfigurationError):
            plic.complete(0, 2)

    def test_invalid_source_rejected(self, plic):
        with pytest.raises(ConfigurationError):
            plic.raise_irq(0)
        with pytest.raises(ConfigurationError):
            plic.raise_irq(99)
        with pytest.raises(ConfigurationError):
            plic.set_priority(9, 1)


class TestMachineIntegration:
    def test_virtio_completion_flows_through_plic(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        device = machine.attach_virtio_block(session)
        claims = []
        original_claim = machine.plic.claim

        def counting_claim(context):
            source = original_claim(context)
            if source:
                claims.append(source)
            return source

        machine.plic.claim = counting_claim

        def workload(ctx):
            ctx.blk_driver().write(0, bytes(512))

        machine.run(session, workload)
        assert device.source_id in claims

    def test_irq_injection_still_validated(self, machine):
        """PLIC routing ends at the SM's Check-after-Load, like before."""
        session = machine.launch_confidential_vm(image=b"x")
        machine.attach_virtio_block(session)

        def workload(ctx):
            ctx.blk_driver().write(0, bytes(512))
            return ctx.deliver_pending_irqs()

        result = machine.run(session, workload)
        # The completion interrupt reached the guest kernel (possibly
        # already delivered by the blocking driver wait).
        assert result["workload_result"] >= 0
        assert session.cvm.exit_reasons.get("mmio_store", 0) >= 1
