"""CLINT: machine timer and IPI semantics."""

import pytest

from repro.isa.clint import Clint


@pytest.fixture
def env():
    time = [0]
    clint = Clint(hart_count=4, time_source=lambda: time[0])
    return time, clint


class TestTimer:
    def test_reset_state_no_pending(self, env):
        time, clint = env
        # mtimecmp resets to all-ones: never pending.
        assert not clint.timer_pending(0)
        time[0] = 1 << 40
        assert not clint.timer_pending(0)

    def test_pending_when_mtime_reaches_cmp(self, env):
        time, clint = env
        clint.write_mtimecmp(0, 1000)
        time[0] = 999
        assert not clint.timer_pending(0)
        time[0] = 1000
        assert clint.timer_pending(0)  # >= comparison per spec
        time[0] = 5000
        assert clint.timer_pending(0)

    def test_rearm_clears_pending(self, env):
        time, clint = env
        clint.write_mtimecmp(0, 100)
        time[0] = 200
        assert clint.timer_pending(0)
        clint.arm_after(0, 1000)
        assert not clint.timer_pending(0)
        assert clint.read_mtimecmp(0) == 1200

    def test_per_hart_independence(self, env):
        time, clint = env
        clint.write_mtimecmp(1, 50)
        time[0] = 60
        assert clint.timer_pending(1)
        assert not clint.timer_pending(0)
        assert not clint.timer_pending(3)

    def test_mtime_tracks_source(self, env):
        time, clint = env
        time[0] = 12345
        assert clint.mtime == 12345

    def test_wraparound_mask(self, env):
        time, clint = env
        time[0] = (1 << 64) + 5  # ledger beyond 64 bits
        assert clint.mtime == 5


class TestIpi:
    def test_send_and_clear(self, env):
        _, clint = env
        assert not clint.ipi_pending(2)
        clint.send_ipi(2)
        assert clint.ipi_pending(2)
        assert not clint.ipi_pending(1)
        clint.clear_ipi(2)
        assert not clint.ipi_pending(2)

    def test_broadcast_excludes_sender(self, env):
        _, clint = env
        clint.broadcast_ipi(exclude=1)
        assert clint.ipi_pending(0)
        assert not clint.ipi_pending(1)
        assert clint.ipi_pending(2)
        assert clint.ipi_pending(3)


class TestMachineIntegration:
    def test_machine_tick_driven_by_clint(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        before = machine.clint.read_mtimecmp(0)
        machine.run(session, lambda ctx: ctx.compute(2_500_000))
        # The tick fired and was re-armed past the current time.
        assert machine.clint.read_mtimecmp(0) != before
        assert machine.clint.read_mtimecmp(0) > machine.ledger.total - \
            machine.config.timer_tick_cycles
        assert session.cvm.exit_reasons.get("timer", 0) >= 2
