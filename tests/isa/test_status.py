"""mstatus/hstatus field encoding and the mret-target invariant."""

import pytest

from repro.isa import status
from repro.isa.privilege import PrivilegeMode


class TestFieldEncoding:
    def test_mpp_roundtrip(self):
        for level in (0, 1, 3):
            assert status.mpp_of(status.with_mpp(0, level)) == level

    def test_with_mpp_preserves_other_bits(self):
        base = status.MSTATUS_MIE | status.MSTATUS_MPV
        updated = status.with_mpp(base, 1)
        assert updated & status.MSTATUS_MIE
        assert updated & status.MSTATUS_MPV

    @pytest.mark.parametrize(
        "mode,expected_level,expected_mpv",
        [
            (PrivilegeMode.VS, 1, True),
            (PrivilegeMode.VU, 0, True),
            (PrivilegeMode.HS, 1, False),
            (PrivilegeMode.U, 0, False),
        ],
    )
    def test_trap_entry_records_mode(self, mode, expected_level, expected_mpv):
        mstatus = status.encode_trap_entry(status.MSTATUS_MIE, mode)
        assert status.mpp_of(mstatus) == expected_level
        assert bool(mstatus & status.MSTATUS_MPV) == expected_mpv

    def test_trap_entry_stacks_interrupt_enable(self):
        mstatus = status.encode_trap_entry(status.MSTATUS_MIE, PrivilegeMode.HS)
        assert not mstatus & status.MSTATUS_MIE  # disabled in the handler
        assert mstatus & status.MSTATUS_MPIE  # old MIE saved
        restored = status.encode_mret(mstatus)
        assert restored & status.MSTATUS_MIE  # popped back

    def test_mret_clears_mpp_and_mpv(self):
        mstatus = status.with_mpp(status.MSTATUS_MPV, 1)
        after = status.encode_mret(mstatus)
        assert status.mpp_of(after) == 0
        assert not after & status.MSTATUS_MPV


class TestMretTarget:
    @pytest.mark.parametrize(
        "level,mpv,expected",
        [
            (3, False, PrivilegeMode.M),
            (3, True, PrivilegeMode.M),  # MPV ignored for M (spec)
            (1, False, PrivilegeMode.HS),
            (1, True, PrivilegeMode.VS),
            (0, False, PrivilegeMode.U),
            (0, True, PrivilegeMode.VU),
        ],
    )
    def test_targets(self, level, mpv, expected):
        mstatus = status.with_mpp(status.MSTATUS_MPV if mpv else 0, level)
        assert status.mret_target(mstatus) is expected

    def test_trap_then_mret_roundtrip(self):
        """Trapping from a mode and mret'ing returns exactly there."""
        for mode in (PrivilegeMode.VS, PrivilegeMode.HS, PrivilegeMode.VU, PrivilegeMode.U):
            mstatus = status.encode_trap_entry(0, mode)
            assert status.mret_target(mstatus) is mode


class TestHstatus:
    def test_spv_set_for_guest_trap(self):
        hstatus = status.encode_hstatus_for_guest(0, PrivilegeMode.VS)
        assert hstatus & status.HSTATUS_SPV
        assert hstatus & status.HSTATUS_SPVP

    def test_spvp_clear_for_vu(self):
        hstatus = status.encode_hstatus_for_guest(0, PrivilegeMode.VU)
        assert hstatus & status.HSTATUS_SPV
        assert not hstatus & status.HSTATUS_SPVP


class TestWorldSwitchIntegration:
    def test_exit_records_guest_context_in_m_csrs(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        cvm, vcpu = session.cvm, session.cvm.vcpu(0)
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        vcpu.pc = 0x8000_4444
        ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "timer", "cause": 7})
        # During the SM handler, mepc/mcause held the guest context; after
        # the mret to HS, MPP is cleared per spec.
        assert machine.hart.csrs.read_raw("mepc") == 0x8000_4444
        assert machine.hart.csrs.read_raw("mcause") == 7
        assert status.mpp_of(machine.hart.csrs.read_raw("mstatus")) == 0

    def test_mode_is_derived_from_mstatus_not_assigned(self, machine):
        """The hart's mode after every switch equals mret_target(mstatus)
        computed before the return -- the invariant the encoding enforces."""
        session = machine.launch_confidential_vm(image=b"x")
        cvm, vcpu = session.cvm, session.cvm.vcpu(0)
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        assert machine.hart.mode is PrivilegeMode.VS
        ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "timer", "cause": 7})
        assert machine.hart.mode is PrivilegeMode.HS
