"""CSR file: privileged access control and register aliasing."""

import pytest

from repro.errors import TrapRaised
from repro.isa.csr import CsrFile
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import ExceptionCause


@pytest.fixture
def csrs():
    return CsrFile(hart_id=2)


def test_mhartid_preset(csrs):
    assert csrs.read_raw("mhartid") == 2


def test_raw_roundtrip(csrs):
    csrs.write_raw("mepc", 0x8000_1234)
    assert csrs.read_raw("mepc") == 0x8000_1234


def test_raw_write_masks_to_64_bits(csrs):
    csrs.write_raw("mepc", 1 << 70 | 0x42)
    assert csrs.read_raw("mepc") == 0x42


def test_unknown_csr_rejected(csrs):
    with pytest.raises(KeyError):
        csrs.read_raw("bogus")
    with pytest.raises(KeyError):
        csrs.write_raw("bogus", 1)


def test_m_mode_reads_anything(csrs):
    for name in ("mstatus", "hgatp", "sepc", "vsatp"):
        csrs.read(name, PrivilegeMode.M)


def test_hs_cannot_touch_m_csrs(csrs):
    with pytest.raises(TrapRaised) as excinfo:
        csrs.read("medeleg", PrivilegeMode.HS)
    assert excinfo.value.cause == ExceptionCause.ILLEGAL_INSTRUCTION


def test_hs_can_access_hypervisor_csrs(csrs):
    csrs.write("hgatp", 0x1234000, PrivilegeMode.HS)
    assert csrs.read("hgatp", PrivilegeMode.HS) == 0x1234000


def test_vs_access_to_hs_csr_raises_virtual_instruction(csrs):
    with pytest.raises(TrapRaised) as excinfo:
        csrs.read("hgatp", PrivilegeMode.VS)
    assert excinfo.value.cause == ExceptionCause.VIRTUAL_INSTRUCTION


def test_vs_access_to_m_csr_raises_illegal(csrs):
    with pytest.raises(TrapRaised) as excinfo:
        csrs.write("mstatus", 1, PrivilegeMode.VS)
    assert excinfo.value.cause == ExceptionCause.ILLEGAL_INSTRUCTION


def test_vs_s_csr_access_aliases_to_vs_bank(csrs):
    """In VS mode, sepc reads/writes transparently hit vsepc (spec 8.2.2)."""
    csrs.write("sepc", 0xAAAA, PrivilegeMode.VS)
    assert csrs.read_raw("vsepc") == 0xAAAA
    assert csrs.read_raw("sepc") == 0
    assert csrs.read("sepc", PrivilegeMode.VS) == 0xAAAA


def test_hs_s_csr_access_hits_real_bank(csrs):
    csrs.write("sepc", 0xBBBB, PrivilegeMode.HS)
    assert csrs.read_raw("sepc") == 0xBBBB
    assert csrs.read_raw("vsepc") == 0


def test_u_mode_cannot_access_supervisor_csrs(csrs):
    with pytest.raises(TrapRaised):
        csrs.read("sepc", PrivilegeMode.U)


def test_vu_mode_cannot_access_supervisor_csrs(csrs):
    with pytest.raises(TrapRaised):
        csrs.read("sepc", PrivilegeMode.VU)


def test_snapshot_and_restore(csrs):
    csrs.write_raw("vsepc", 10)
    csrs.write_raw("vscause", 20)
    snap = csrs.snapshot(["vsepc", "vscause"])
    csrs.write_raw("vsepc", 0)
    csrs.load_snapshot(snap)
    assert csrs.read_raw("vsepc") == 10
    assert csrs.read_raw("vscause") == 20
