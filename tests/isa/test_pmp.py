"""PMP matching, permission, and priority semantics."""

import pytest

from repro.isa.pmp import PmpAddressMode, PmpEntry, PmpUnit
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import AccessType

M = PrivilegeMode.M
HS = PrivilegeMode.HS
VS = PrivilegeMode.VS
LOAD = AccessType.LOAD
STORE = AccessType.STORE
FETCH = AccessType.FETCH


def tor(base, size, r=False, w=False, x=False, locked=False):
    return PmpEntry(
        mode=PmpAddressMode.TOR, base=base, size=size,
        readable=r, writable=w, executable=x, locked=locked,
    )


class TestEntryValidation:
    def test_na4_must_cover_4_bytes(self):
        with pytest.raises(ValueError):
            PmpEntry(mode=PmpAddressMode.NA4, base=0x1000, size=8)

    def test_napot_requires_power_of_two(self):
        with pytest.raises(ValueError):
            PmpEntry(mode=PmpAddressMode.NAPOT, base=0x1000, size=0x3000)

    def test_napot_requires_natural_alignment(self):
        with pytest.raises(ValueError):
            PmpEntry(mode=PmpAddressMode.NAPOT, base=0x1000, size=0x2000)

    def test_valid_napot(self):
        entry = PmpEntry(mode=PmpAddressMode.NAPOT, base=0x10000, size=0x10000, readable=True)
        assert entry.matches(0x10000, 8) == "full"


class TestMatching:
    def test_full_match(self):
        entry = tor(0x8000_0000, 0x1000)
        assert entry.matches(0x8000_0100, 8) == "full"

    def test_no_match_below_and_above(self):
        entry = tor(0x8000_0000, 0x1000)
        assert entry.matches(0x7FFF_FFF8, 8) == "none"
        assert entry.matches(0x8000_1000, 8) == "none"

    def test_partial_match_straddling_start(self):
        entry = tor(0x8000_0000, 0x1000)
        assert entry.matches(0x7FFF_FFFC, 8) == "partial"

    def test_partial_match_straddling_end(self):
        entry = tor(0x8000_0000, 0x1000)
        assert entry.matches(0x8000_0FFC, 8) == "partial"

    def test_off_entry_never_matches(self):
        assert PmpEntry().matches(0, 8) == "none"


class TestChecking:
    def test_no_entries_m_mode_allowed(self):
        unit = PmpUnit()
        assert unit.check(0x8000_0000, 8, LOAD, M)

    def test_no_entries_lower_mode_allowed(self):
        """With zero implemented entries, S/U accesses succeed (spec)."""
        unit = PmpUnit()
        assert unit.check(0x8000_0000, 8, LOAD, HS)

    def test_any_entry_implemented_denies_unmatched_lower_access(self):
        unit = PmpUnit()
        unit.set_entry(0, tor(0x1000, 0x1000, r=True))
        assert not unit.check(0x8000_0000, 8, LOAD, HS)
        assert unit.check(0x8000_0000, 8, LOAD, M)

    def test_permissions_enforced_per_access_type(self):
        unit = PmpUnit()
        unit.set_entry(0, tor(0x8000_0000, 0x1000, r=True))
        assert unit.check(0x8000_0000, 8, LOAD, HS)
        assert not unit.check(0x8000_0000, 8, STORE, HS)
        assert not unit.check(0x8000_0000, 4, FETCH, HS)

    def test_priority_lowest_index_wins(self):
        unit = PmpUnit()
        unit.set_entry(0, tor(0x8000_0000, 0x1000))  # deny
        unit.set_entry(1, tor(0x8000_0000, 0x10000, r=True, w=True))
        assert not unit.check(0x8000_0000, 8, LOAD, HS)
        # Outside entry 0, entry 1 applies.
        assert unit.check(0x8000_2000, 8, LOAD, HS)

    def test_partial_match_fails_even_in_m_mode(self):
        unit = PmpUnit()
        unit.set_entry(0, tor(0x8000_0000, 0x1000, r=True, locked=True))
        assert not unit.check(0x8000_0FFC, 8, LOAD, M)

    def test_m_mode_bypasses_unlocked_entries(self):
        unit = PmpUnit()
        unit.set_entry(0, tor(0x8000_0000, 0x1000))  # no perms
        assert unit.check(0x8000_0000, 8, STORE, M)

    def test_m_mode_bound_by_locked_entries(self):
        unit = PmpUnit()
        unit.set_entry(0, tor(0x8000_0000, 0x1000, locked=True))
        assert not unit.check(0x8000_0000, 8, STORE, M)

    def test_virtual_modes_subject_to_pmp(self):
        unit = PmpUnit()
        unit.set_entry(0, tor(0x8000_0000, 0x1000, r=True))
        assert unit.check(0x8000_0000, 8, LOAD, VS)
        assert not unit.check(0x8000_0000, 8, STORE, VS)

    def test_locked_entry_refuses_reprogramming(self):
        unit = PmpUnit()
        unit.set_entry(0, tor(0x8000_0000, 0x1000, locked=True))
        with pytest.raises(PermissionError):
            unit.set_entry(0, tor(0x8000_0000, 0x1000, r=True))

    def test_entry_count(self):
        assert len(PmpUnit().entries()) == 16
