"""Privilege-mode model tests."""

from repro.isa.privilege import PrivilegeMode


def test_machine_mode_is_highest():
    assert PrivilegeMode.M.level > PrivilegeMode.HS.level > PrivilegeMode.U.level


def test_virtual_modes_flagged():
    assert PrivilegeMode.VS.virtualized
    assert PrivilegeMode.VU.virtualized
    assert not PrivilegeMode.M.virtualized
    assert not PrivilegeMode.HS.virtualized
    assert not PrivilegeMode.U.virtualized


def test_vs_and_hs_share_privilege_level():
    assert PrivilegeMode.VS.level == PrivilegeMode.HS.level == 1


def test_vu_and_u_share_privilege_level():
    assert PrivilegeMode.VU.level == PrivilegeMode.U.level == 0


def test_is_guest_alias():
    for mode in PrivilegeMode:
        assert mode.is_guest == mode.virtualized


def test_modes_are_distinct():
    assert len({mode.value for mode in PrivilegeMode}) == 5
