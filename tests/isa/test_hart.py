"""Hart model: GPRs, delegation views, cycle charging."""

import pytest

from repro.cycles import Category
from repro.isa.hart import GPR_NAMES, Hart
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import ExceptionCause, InterruptCause


@pytest.fixture
def hart():
    return Hart(0)


def test_resets_into_m_mode(hart):
    assert hart.mode is PrivilegeMode.M


def test_gpr_count():
    assert len(GPR_NAMES) == 31


def test_x0_reads_zero_and_ignores_writes(hart):
    hart.write_gpr("zero", 0xFF)
    assert hart.read_gpr("zero") == 0
    hart.write_gpr("x0", 0xFF)
    assert hart.read_gpr("x0") == 0


def test_gpr_roundtrip_and_mask(hart):
    hart.write_gpr("a0", (1 << 64) + 5)
    assert hart.read_gpr("a0") == 5


def test_unknown_gpr_rejected(hart):
    with pytest.raises(KeyError):
        hart.write_gpr("a99", 1)


def test_gpr_snapshot_is_a_copy(hart):
    hart.write_gpr("s0", 42)
    snap = hart.gpr_snapshot()
    hart.write_gpr("s0", 0)
    assert snap["s0"] == 42
    hart.load_gprs(snap)
    assert hart.read_gpr("s0") == 42


def test_medeleg_roundtrip_through_csr_bits(hart):
    causes = frozenset({ExceptionCause.ECALL_FROM_U, ExceptionCause.LOAD_PAGE_FAULT})
    hart.medeleg = causes
    assert hart.medeleg == causes
    raw = hart.csrs.read_raw("medeleg")
    assert raw == (1 << 8) | (1 << 13)


def test_mideleg_roundtrip(hart):
    causes = frozenset({InterruptCause.VIRTUAL_SUPERVISOR_TIMER})
    hart.mideleg = causes
    assert hart.mideleg == causes
    assert hart.csrs.read_raw("mideleg") == 1 << 6


def test_hedeleg_hideleg_roundtrip(hart):
    hart.hedeleg = frozenset({ExceptionCause.BREAKPOINT})
    hart.hideleg = frozenset({InterruptCause.VIRTUAL_SUPERVISOR_EXTERNAL})
    assert ExceptionCause.BREAKPOINT in hart.hedeleg
    assert InterruptCause.VIRTUAL_SUPERVISOR_EXTERNAL in hart.hideleg


def test_charge_goes_to_ledger(hart):
    hart.charge(Category.COMPUTE, 100)
    assert hart.ledger.total == 100
    assert hart.ledger.by_category()[Category.COMPUTE] == 100
