"""Public API surface: exports resolve, every public item is documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.isa",
    "repro.mem",
    "repro.sm",
    "repro.hyp",
    "repro.guest",
    "repro.cycles",
    "repro.workloads",
    "repro.bench",
    "repro.fleet",
]


def _all_modules():
    modules = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        modules.append(package)
        for info in pkgutil.iter_modules(package.__path__):
            modules.append(importlib.import_module(f"{package_name}.{info.name}"))
    return modules


@pytest.mark.parametrize("package_name", PACKAGES)
def test_declared_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name}"


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__ for module in _all_modules() if not (module.__doc__ or "").strip()
    ]
    assert undocumented == []


def test_every_public_class_and_function_documented():
    undocumented = []
    for module in _all_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (obj.__doc__ or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for method_name, method in vars(obj).items():
                    if method_name.startswith("_") or not inspect.isfunction(method):
                        continue
                    if not (method.__doc__ or "").strip():
                        undocumented.append(
                            f"{module.__name__}.{name}.{method_name}"
                        )
    assert undocumented == [], f"undocumented public items: {undocumented}"


def test_version_is_exposed():
    assert repro.__version__


def test_top_level_convenience_imports():
    from repro import (  # noqa: F401
        Machine,
        MachineConfig,
        Tracer,
        assert_invariants,
        machine_stats,
    )
