"""The in-guest mini-Redis: RESP protocol and command semantics."""

import pytest

from repro.workloads.redis import (
    RedisServer,
    resp_array,
    resp_bulk,
    resp_decode_command,
    resp_encode_command,
    resp_integer,
    resp_simple,
)


@pytest.fixture
def server():
    return RedisServer()


def run(server, *parts):
    return server.execute([p.encode() if isinstance(p, str) else p for p in parts])


class TestResp:
    def test_encode_command(self):
        assert resp_encode_command(["GET", "k"]) == b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"

    def test_decode_command(self):
        assert resp_decode_command(b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n") == [b"GET", b"k"]

    def test_decode_rejects_non_array(self):
        with pytest.raises(ValueError):
            resp_decode_command(b"+OK\r\n")

    def test_bulk_null(self):
        assert resp_bulk(None) == b"$-1\r\n"

    def test_reply_builders(self):
        assert resp_simple("OK") == b"+OK\r\n"
        assert resp_integer(42) == b":42\r\n"
        assert resp_array([b"a", b"bb"]) == b"*2\r\n$1\r\na\r\n$2\r\nbb\r\n"


class TestStringCommands:
    def test_set_get(self, server):
        assert run(server, "SET", "k", "v") == b"+OK\r\n"
        assert run(server, "GET", "k") == b"$1\r\nv\r\n"

    def test_get_missing(self, server):
        assert run(server, "GET", "nope") == b"$-1\r\n"

    def test_incr_from_zero_and_existing(self, server):
        assert run(server, "INCR", "c") == b":1\r\n"
        assert run(server, "INCR", "c") == b":2\r\n"
        run(server, "SET", "c", "41")
        assert run(server, "INCR", "c") == b":42\r\n"

    def test_mset(self, server):
        assert run(server, "MSET", "a", "1", "b", "2") == b"+OK\r\n"
        assert run(server, "GET", "b") == b"$1\r\n2\r\n"

    def test_ping(self, server):
        assert run(server, "PING") == b"+PONG\r\n"


class TestListCommands:
    def test_push_pop_order(self, server):
        run(server, "RPUSH", "l", "a")
        run(server, "RPUSH", "l", "b")
        run(server, "LPUSH", "l", "z")
        assert run(server, "LPOP", "l") == b"$1\r\nz\r\n"
        assert run(server, "RPOP", "l") == b"$1\r\nb\r\n"
        assert run(server, "LPOP", "l") == b"$1\r\na\r\n"
        assert run(server, "LPOP", "l") == b"$-1\r\n"

    def test_push_returns_length(self, server):
        assert run(server, "RPUSH", "l", "a", "b", "c") == b":3\r\n"

    def test_lrange(self, server):
        run(server, "RPUSH", "l", *[str(i) for i in range(5)])
        reply = run(server, "LRANGE", "l", "1", "3")
        assert reply == resp_array([b"1", b"2", b"3"])

    def test_lrange_to_end(self, server):
        run(server, "RPUSH", "l", "a", "b")
        assert run(server, "LRANGE", "l", "0", "-1") == resp_array([b"a", b"b"])


class TestSetHashCommands:
    def test_sadd_dedups(self, server):
        assert run(server, "SADD", "s", "x", "y") == b":2\r\n"
        assert run(server, "SADD", "s", "x") == b":0\r\n"

    def test_spop_drains(self, server):
        run(server, "SADD", "s", "only")
        assert run(server, "SPOP", "s") == b"$4\r\nonly\r\n"
        assert run(server, "SPOP", "s") == b"$-1\r\n"

    def test_hset(self, server):
        assert run(server, "HSET", "h", "f", "1") == b":1\r\n"
        assert run(server, "HSET", "h", "f", "2") == b":0\r\n"


class TestDispatch:
    def test_unknown_command_is_error(self, server):
        assert run(server, "FLUSHALL").startswith(b"-ERR")

    def test_empty_command_is_error(self, server):
        assert server.execute([]).startswith(b"-ERR")

    def test_case_insensitive(self, server):
        assert run(server, "set", "k", "v") == b"+OK\r\n"
        assert run(server, "GeT", "k") == b"$1\r\nv\r\n"

    def test_commands_served_counter(self, server):
        run(server, "PING")
        run(server, "PING")
        assert server.commands_served == 2
