"""Slot routing, MGET reassembly and shard-failure tests for the cluster.

The pure pieces (CRC16 slots, hash tags, :class:`SlotMap`,
:class:`SlotRouter`, reply reassembly) are tested without a machine; the
failure path runs the real cluster on the simulator and asserts the
router fail-stops a dead shard with typed errors instead of hanging.
"""

from __future__ import annotations

import pytest

from repro.errors import ShardDown
from repro.workloads.redis import (
    RedisServer,
    ResponseError,
    resp_decode_reply,
    resp_encode_command,
)
from repro.workloads.redis_cluster import (
    HASH_SLOTS,
    LoadGenerator,
    RoutePlan,
    SlotMap,
    SlotRouter,
    _Pending,
    crc16,
    hash_tag,
    key_slot,
)


def _key_for_shard(slot_map: SlotMap, shard: int) -> bytes:
    """Brute-force a key owned by ``shard`` (deterministic search)."""
    for i in range(100_000):
        key = b"k%d" % i
        if slot_map.shard_of_key(key) == shard:
            return key
    raise AssertionError(f"no key found for shard {shard}")


# ---------------------------------------------------------------------------
# key -> slot mapping
# ---------------------------------------------------------------------------


class TestKeySlot:
    def test_crc16_xmodem_check_value(self):
        # The CRC16/XMODEM check vector, and the slot Redis documents
        # for "123456789" (0x31C3 == 12739).
        assert crc16(b"123456789") == 0x31C3
        assert key_slot(b"123456789") == 12739

    def test_empty_key_is_slot_zero(self):
        assert key_slot(b"") == 0

    def test_slot_range(self):
        for key in (b"foo", b"bar", b"key:1234", b"\x00\xff"):
            assert 0 <= key_slot(key) < HASH_SLOTS

    def test_hash_tag_pins_related_keys(self):
        # The documented use case: both keys hash only "user1000".
        assert hash_tag(b"{user1000}.following") == b"user1000"
        assert key_slot(b"{user1000}.following") == \
            key_slot(b"{user1000}.followers") == key_slot(b"user1000")

    def test_empty_tag_hashes_whole_key(self):
        # "{}" is empty: the whole key is hashed (Redis rule 2).
        assert hash_tag(b"foo{}{bar}") == b"foo{}{bar}"
        assert key_slot(b"foo{}{bar}") == crc16(b"foo{}{bar}") % HASH_SLOTS

    def test_nested_braces_take_first_closing(self):
        # Only the text between the first "{" and the first "}" after
        # it counts: "{bar" (Redis rule 3).
        assert hash_tag(b"foo{{bar}}zap") == b"{bar"

    def test_first_tag_wins(self):
        assert hash_tag(b"foo{bar}{zap}") == b"bar"

    def test_unclosed_brace_hashes_whole_key(self):
        assert hash_tag(b"foo{bar") == b"foo{bar"

    def test_str_keys_accepted(self):
        assert key_slot("abc") == key_slot(b"abc")


# ---------------------------------------------------------------------------
# SlotMap
# ---------------------------------------------------------------------------


class TestSlotMap:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7, 16])
    def test_ranges_are_contiguous_and_cover_all_slots(self, shards):
        slot_map = SlotMap(shards)
        expected_start = 0
        for start, end in slot_map.ranges:
            assert start == expected_start
            assert end > start
            expected_start = end
        assert expected_start == HASH_SLOTS

    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7, 16])
    def test_shard_of_slot_matches_ranges_at_boundaries(self, shards):
        slot_map = SlotMap(shards)
        for shard, (start, end) in enumerate(slot_map.ranges):
            # Both edges of every contiguous range resolve to its owner.
            assert slot_map.shard_of_slot(start) == shard
            assert slot_map.shard_of_slot(end - 1) == shard
            assert slot_map.slots_of_shard(shard) == range(start, end)

    def test_shard_of_slot_rejects_out_of_range(self):
        slot_map = SlotMap(4)
        with pytest.raises(ValueError):
            slot_map.shard_of_slot(HASH_SLOTS)
        with pytest.raises(ValueError):
            slot_map.shard_of_slot(-1)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            SlotMap(0)


# ---------------------------------------------------------------------------
# SlotRouter plans
# ---------------------------------------------------------------------------


class TestSlotRouter:
    def test_single_key_command_routes_to_owner(self):
        slot_map = SlotMap(4)
        router = SlotRouter(slot_map)
        plan = router.plan([b"GET", b"key:7"])
        assert plan.error is None and not plan.is_split
        [(shard, parts, indices)] = plan.targets
        assert shard == slot_map.shard_of_key(b"key:7")
        assert parts == [b"GET", b"key:7"] and indices is None

    def test_empty_command_is_local_error(self):
        plan = SlotRouter(SlotMap(2)).plan([])
        assert plan.error is not None and plan.targets == []
        error, _ = resp_decode_reply(plan.error)
        assert isinstance(error, ResponseError)

    def test_mget_splits_by_shard_preserving_indices(self):
        slot_map = SlotMap(3)
        router = SlotRouter(slot_map)
        keys = [_key_for_shard(slot_map, s) for s in (2, 0, 2, 1)]
        plan = router.plan([b"MGET", *keys])
        assert plan.is_split and plan.key_count == 4
        # Each sub-MGET carries only that shard's keys, and the original
        # positions of those keys are remembered for reassembly.
        by_shard = {shard: (parts, indices)
                    for shard, parts, indices in plan.targets}
        assert set(by_shard) == {0, 1, 2}
        assert by_shard[2][0] == [b"MGET", keys[0], keys[2]]
        assert by_shard[2][1] == [0, 2]
        assert by_shard[0][0] == [b"MGET", keys[1]] and by_shard[0][1] == [1]
        assert by_shard[1][0] == [b"MGET", keys[3]] and by_shard[1][1] == [3]

    def test_mget_single_shard_is_one_target(self):
        slot_map = SlotMap(2)
        key = _key_for_shard(slot_map, 1)
        plan = SlotRouter(slot_map).plan([b"MGET", key, key])
        assert plan.is_split and len(plan.targets) == 1

    def test_cross_slot_mset_refused(self):
        slot_map = SlotMap(4)
        key_a = _key_for_shard(slot_map, 0)
        key_b = _key_for_shard(slot_map, 3)
        plan = SlotRouter(slot_map).plan([b"MSET", key_a, b"1", key_b, b"2"])
        error, _ = resp_decode_reply(plan.error)
        assert isinstance(error, ResponseError)
        assert "CROSSSLOT" in error.message

    def test_hash_tagged_mset_stays_single_shard(self):
        slot_map = SlotMap(4)
        plan = SlotRouter(slot_map).plan(
            [b"MSET", b"{user1}.a", b"1", b"{user1}.b", b"2"]
        )
        assert plan.error is None and len(plan.targets) == 1

    def test_keyless_command_routes_to_slot_zero_owner(self):
        slot_map = SlotMap(4)
        plan = SlotRouter(slot_map).plan([b"PING"])
        [(shard, _, _)] = plan.targets
        assert shard == slot_map.shard_of_slot(0)


# ---------------------------------------------------------------------------
# MGET reassembly through _Pending (router-side, no machine)
# ---------------------------------------------------------------------------


class TestMgetReassembly:
    def test_out_of_order_parts_reassemble_in_request_order(self):
        slot_map = SlotMap(3)
        router = SlotRouter(slot_map)
        # Per-shard backing stores with known values.
        servers = {s: RedisServer() for s in range(3)}
        keys, expected = [], []
        for i, shard in enumerate((2, 0, 1, 2, 0)):
            key = _key_for_shard(slot_map, shard) + b":%d" % i
            # Suffixing may move the key: recompute the real owner.
            owner = slot_map.shard_of_key(key)
            value = b"value-%d" % i
            servers[owner].execute([b"SET", key, value])
            keys.append(key)
            expected.append(value)
        plan = router.plan([b"MGET", *keys])
        slot = _Pending(len(plan.targets), plan.key_count)
        # Deliver shard replies in *reverse* target order: reassembly
        # must still match the original request order.
        for shard, parts, indices in reversed(plan.targets):
            reply = servers[shard].execute(parts)
            slot.complete_part(indices, reply)
        assert slot.reply is not None
        values, _ = resp_decode_reply(slot.reply)
        assert values == expected

    def test_missing_keys_come_back_nil_in_position(self):
        slot_map = SlotMap(2)
        router = SlotRouter(slot_map)
        key = _key_for_shard(slot_map, 1)
        server = RedisServer()
        server.execute([b"SET", key, b"present"])
        plan = router.plan([b"MGET", b"absent-key", key])
        slot = _Pending(len(plan.targets), plan.key_count)
        for shard, parts, indices in plan.targets:
            slot.complete_part(indices, server.execute(parts))
        values, _ = resp_decode_reply(slot.reply)
        assert values == [None, b"present"]


# ---------------------------------------------------------------------------
# Load generator determinism
# ---------------------------------------------------------------------------


class TestLoadGenerator:
    def test_same_seed_same_stream(self):
        a = LoadGenerator(seed=7)
        b = LoadGenerator(seed=7)
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]

    def test_mix_respects_percentages_roughly(self):
        gen = LoadGenerator(seed=3, get_pct=60, set_pct=30)
        ops = [gen.next()[1] for _ in range(600)]
        assert 0.45 < ops.count("GET") / len(ops) < 0.75
        assert ops.count("MGET") > 0


# ---------------------------------------------------------------------------
# Shard failure: typed error, no hang
# ---------------------------------------------------------------------------


class TestShardFailure:
    def test_dead_shard_fails_fast_with_typed_error(self):
        from repro.bench.redis_cluster import run_cluster

        result = run_cluster(
            shards=2, clients=1, requests=12, pipeline=4,
            fail_shard=1, fail_after=3, idle_limit=16,
        )
        # Every request completed -- with a reply or a typed error --
        # and the run terminated (reaching this line IS the no-hang
        # assertion; a wedged router would spin forever).
        assert result["requests"] == 12
        assert result["shards_down"] == [1]
        assert result["errors"] > 0
        assert all(
            "SHARDDOWN" in message for _op, message in result["error_samples"]
        )
        [error] = result["shard_errors"]
        assert isinstance(error, ShardDown) and error.shard == 1

    def test_healthy_cluster_has_no_errors(self):
        from repro.bench.redis_cluster import run_cluster

        result = run_cluster(shards=2, clients=2, requests=8, pipeline=4)
        assert result["errors"] == 0
        assert result["requests"] == 16
        assert result["shards_down"] == []
        assert sum(result["per_shard_requests"]) >= 16
        assert result["ops"]["GET"] + result["ops"]["SET"] \
            + result["ops"]["MGET"] == 16
