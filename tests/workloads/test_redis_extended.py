"""Extended Redis commands: deletion, existence, strings, TTLs."""

import pytest

from repro.workloads.redis import RedisServer, resp_array


@pytest.fixture
def server():
    return RedisServer()


def run(server, *parts):
    return server.execute([p.encode() if isinstance(p, str) else p for p in parts])


class TestDeletionExistence:
    def test_del_string(self, server):
        run(server, "SET", "k", "v")
        assert run(server, "DEL", "k") == b":1\r\n"
        assert run(server, "GET", "k") == b"$-1\r\n"

    def test_del_multiple_mixed_types(self, server):
        run(server, "SET", "s", "v")
        run(server, "RPUSH", "l", "a")
        run(server, "SADD", "st", "x")
        assert run(server, "DEL", "s", "l", "st", "missing") == b":3\r\n"

    def test_exists(self, server):
        assert run(server, "EXISTS", "nope") == b":0\r\n"
        run(server, "HSET", "h", "f", "v")
        assert run(server, "EXISTS", "h") == b":1\r\n"


class TestStringExtras:
    def test_append_creates_and_extends(self, server):
        assert run(server, "APPEND", "k", "ab") == b":2\r\n"
        assert run(server, "APPEND", "k", "cd") == b":4\r\n"
        assert run(server, "GET", "k") == b"$4\r\nabcd\r\n"

    def test_getset(self, server):
        assert run(server, "GETSET", "k", "new") == b"$-1\r\n"
        assert run(server, "GETSET", "k", "newer") == b"$3\r\nnew\r\n"


class TestCollectionsExtras:
    def test_llen(self, server):
        assert run(server, "LLEN", "l") == b":0\r\n"
        run(server, "RPUSH", "l", "a", "b")
        assert run(server, "LLEN", "l") == b":2\r\n"

    def test_scard(self, server):
        run(server, "SADD", "s", "a", "b", "c")
        assert run(server, "SCARD", "s") == b":3\r\n"

    def test_hget_hgetall(self, server):
        run(server, "HSET", "h", "f1", "v1")
        run(server, "HSET", "h", "f2", "v2")
        assert run(server, "HGET", "h", "f1") == b"$2\r\nv1\r\n"
        assert run(server, "HGET", "h", "nope") == b"$-1\r\n"
        assert run(server, "HGETALL", "h") == resp_array([b"f1", b"v1", b"f2", b"v2"])


class TestExpiry:
    def test_expire_and_ttl_follow_the_clock(self):
        now = [100.0]
        server = RedisServer(clock=lambda: now[0])
        run(server, "SET", "k", "v")
        assert run(server, "EXPIRE", "k", "10") == b":1\r\n"
        assert run(server, "TTL", "k") == b":10\r\n"
        now[0] = 105.0
        assert run(server, "TTL", "k") == b":5\r\n"
        now[0] = 110.0
        assert run(server, "GET", "k") == b"$-1\r\n"
        assert run(server, "TTL", "k") == b":-2\r\n"

    def test_expire_on_missing_key(self, server):
        assert run(server, "EXPIRE", "nope", "10") == b":0\r\n"

    def test_ttl_without_expiry(self, server):
        run(server, "SET", "k", "v")
        assert run(server, "TTL", "k") == b":-1\r\n"

    def test_del_clears_expiry(self):
        now = [0.0]
        server = RedisServer(clock=lambda: now[0])
        run(server, "SET", "k", "v")
        run(server, "EXPIRE", "k", "10")
        run(server, "DEL", "k")
        run(server, "SET", "k", "fresh")
        now[0] = 100.0
        assert run(server, "GET", "k") == b"$5\r\nfresh\r\n"

    def test_expiry_driven_by_simulated_time_in_guest(self, machine):
        """EXPIRE inside a CVM counts machine cycles, not wall clock."""
        from repro.workloads.redis import (
            resp_decode_command,
            resp_encode_command,
        )

        session = machine.launch_confidential_vm(image=b"x")

        def workload(ctx):
            clock_hz = machine.config.clock_hz
            server = RedisServer(clock=lambda: ctx.ledger.total / clock_hz)
            server.execute([b"SET", b"session", b"token"])
            server.execute([b"EXPIRE", b"session", b"1"])  # 1 simulated second
            ctx.compute(clock_hz // 2)  # 0.5 s
            alive = server.execute([b"GET", b"session"])
            ctx.compute(clock_hz)  # 1.5 s total
            dead = server.execute([b"GET", b"session"])
            return alive, dead

        alive, dead = machine.run(session, workload)["workload_result"]
        assert alive == b"$5\r\ntoken\r\n"
        assert dead == b"$-1\r\n"
