"""Redis pipelining (-P): batching amortises the per-request exits."""

import pytest

from repro import Machine, MachineConfig
from repro.workloads.redis import redis_benchmark


def _measure(kind, pipeline, requests=200):
    machine = Machine(MachineConfig())
    if kind == "cvm":
        session = machine.launch_confidential_vm(image=b"pl" * 100)
    else:
        session = machine.launch_normal_vm()
    machine.attach_virtio_net(session)
    return redis_benchmark(machine, session, "GET", requests, pipeline=pipeline)


def test_all_requests_answered_with_pipelining():
    stats = _measure("cvm", pipeline=8)
    assert stats["requests"] == 200
    assert stats["pipeline"] == 8


def test_pipelining_raises_throughput():
    serial = _measure("cvm", pipeline=1)
    batched = _measure("cvm", pipeline=16)
    assert batched["throughput_rps"] > serial["throughput_rps"] * 1.05


def test_pipelining_shrinks_confidential_overhead():
    """The CVM's extra cost is per-exit; batching divides it across the
    batch, so the overhead percentage falls -- emergent, not programmed."""

    def overhead(pipeline):
        normal = _measure("normal", pipeline)
        cvm = _measure("cvm", pipeline)
        return (
            100.0
            * (normal["throughput_rps"] - cvm["throughput_rps"])
            / normal["throughput_rps"]
        )

    assert overhead(16) < overhead(1)


def test_latencies_tracked_per_request():
    stats = _measure("cvm", pipeline=8, requests=64)
    assert stats["avg_latency_us"] > 0
