"""End-to-end workload sanity: small runs of every experiment workload."""

import pytest

from repro import Machine, MachineConfig
from repro.hyp.devices import ConsoleDevice
from repro.workloads.coremark import coremark_workload, score_from
from repro.workloads.cpu import CONSOLE_GPA, cpu_bound_workload
from repro.workloads.iozone import IozoneResult, iozone_run
from repro.workloads.memstress import sequential_write_stress
from repro.workloads.profiles import RV8_PROFILES
from repro.workloads.redis import redis_benchmark


def _cvm(machine, image=b"wl" * 100):
    return machine.launch_confidential_vm(image=image)


class TestCpuWorkload:
    def test_runs_on_both_vm_kinds(self):
        profile = RV8_PROFILES["qsort"]
        for kind in ("normal", "cvm"):
            machine = Machine(MachineConfig())
            machine.hypervisor.devices.add(ConsoleDevice(CONSOLE_GPA))
            session = _cvm(machine) if kind == "cvm" else machine.launch_normal_vm()
            result = machine.run(session, cpu_bound_workload(profile, 5_000_000))
            inner = result["workload_result"]
            assert inner["compute_cycles"] == 5_000_000
            assert inner["cycles"] >= 5_000_000

    def test_cvm_steady_state_slower_than_normal(self):
        profile = RV8_PROFILES["aes"]
        cycles = {}
        for kind in ("normal", "cvm"):
            machine = Machine(MachineConfig())
            machine.hypervisor.devices.add(ConsoleDevice(CONSOLE_GPA))
            session = _cvm(machine) if kind == "cvm" else machine.launch_normal_vm()
            result = machine.run(session, cpu_bound_workload(profile, 20_000_000))
            cycles[kind] = result["workload_result"]["cycles"]
        overhead = (cycles["cvm"] - cycles["normal"]) / cycles["normal"]
        assert 0.005 < overhead < 0.05

    def test_profiles_cover_table_i(self):
        assert set(RV8_PROFILES) == {
            "aes", "bigint", "dhrystone", "miniz", "norx", "primes", "qsort", "sha512"
        }
        for profile in RV8_PROFILES.values():
            assert profile.total_cycles > 1_000_000_000
            assert 0 < profile.ws_pages < 512


class TestCoremarkWorkload:
    def test_score_computation(self):
        machine = Machine(MachineConfig())
        machine.hypervisor.devices.add(ConsoleDevice(CONSOLE_GPA))
        result = machine.run(machine.launch_normal_vm(), coremark_workload(200))
        score = score_from(result["workload_result"], machine.config.clock_hz)
        # ~48.5k cycles/iteration + touches -> score near 2000 at 100 MHz.
        assert 1800 < score < 2300


class TestRedisWorkload:
    def test_all_requests_served_and_answered(self):
        machine = Machine(MachineConfig())
        session = _cvm(machine)
        machine.attach_virtio_net(session)
        stats = redis_benchmark(machine, session, "SET", requests=50)
        assert stats["requests"] == 50
        assert stats["throughput_rps"] > 0
        assert stats["avg_latency_us"] > 0

    def test_setup_commands_not_timed(self):
        """LPOP needs a preloaded list; replies must all be non-errors."""
        machine = Machine(MachineConfig())
        session = _cvm(machine)
        machine.attach_virtio_net(session)
        stats = redis_benchmark(machine, session, "LPOP", requests=30)
        assert stats["requests"] == 30

    def test_throughput_latency_inverse_relation(self):
        """A heavier command trades throughput for latency, on one VM."""

        def measure(op):
            machine = Machine(MachineConfig())
            session = _cvm(machine)
            machine.attach_virtio_net(session)
            return redis_benchmark(machine, session, op, requests=30)

        heavy = measure("LRANGE_100")
        cheap = measure("GET")
        assert heavy["throughput_rps"] < cheap["throughput_rps"]
        assert heavy["avg_latency_us"] > cheap["avg_latency_us"]


class TestIozoneWorkload:
    def test_result_math(self):
        result = IozoneResult(
            file_bytes=1 << 20, record_bytes=8 << 10,
            write_cycles=100_000_000, read_cycles=50_000_000,
        )
        assert result.throughput_kb_s("write", 100_000_000) == pytest.approx(1024.0)
        assert result.throughput_kb_s("read", 100_000_000) == pytest.approx(2048.0)

    def test_small_file_never_touches_device(self):
        machine = Machine(MachineConfig())
        session = _cvm(machine)
        device = machine.attach_virtio_block(session)
        iozone_run(machine, session, file_bytes=256 << 10, record_bytes=8 << 10,
                   cache_bytes=4 << 20)
        # Cached write + cached read: only the untimed sync hits the disk.
        assert device.reads == 0

    def test_large_file_streams_through_device(self):
        machine = Machine(MachineConfig())
        session = _cvm(machine)
        device = machine.attach_virtio_block(session)
        iozone_run(machine, session, file_bytes=4 << 20, record_bytes=128 << 10,
                   cache_bytes=1 << 20)
        assert device.writes > 0
        assert device.reads > 0

    def test_smaller_records_are_slower(self):
        machine = Machine(MachineConfig())
        session = _cvm(machine)
        machine.attach_virtio_block(session)
        small = iozone_run(machine, session, 1 << 20, 8 << 10, cache_bytes=4 << 20)
        big = iozone_run(machine, session, 1 << 20, 256 << 10, cache_bytes=4 << 20)
        clock = machine.config.clock_hz
        assert small.throughput_kb_s("write", clock) < big.throughput_kb_s("write", clock)


class TestMemstress:
    def test_one_fault_per_page(self, machine):
        session = _cvm(machine)
        faults = []
        machine.fault_observer = lambda kind, stage, cycles: faults.append(kind)
        machine.run(session, sequential_write_stress(pages=32))
        assert faults.count("sm") == 32
