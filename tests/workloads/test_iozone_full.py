"""The full IOZone pass set (write/rewrite/read/reread/random)."""

import pytest

from repro import Machine, MachineConfig
from repro.workloads.iozone import iozone_full_workload


def _run(file_bytes, record_bytes, cache_bytes, kind="cvm"):
    machine = Machine(MachineConfig())
    if kind == "cvm":
        session = machine.launch_confidential_vm(image=b"iozf" * 64)
    else:
        session = machine.launch_normal_vm()
    machine.attach_virtio_block(session)
    result = machine.run(
        session, iozone_full_workload(file_bytes, record_bytes, cache_bytes)
    )
    return result["workload_result"]


class TestCachedFile:
    def test_all_passes_present(self):
        results = _run(256 << 10, 32 << 10, cache_bytes=4 << 20)
        assert set(results) == {
            "write", "rewrite", "read", "reread", "random_read", "random_write"
        }
        assert all(cycles > 0 for cycles in results.values())

    def test_cached_passes_cost_roughly_the_same(self):
        """A fully cached file never touches the device: every pass is
        memory-speed, sequential or random alike."""
        results = _run(256 << 10, 32 << 10, cache_bytes=4 << 20)
        baseline = results["write"]
        for op, cycles in results.items():
            assert cycles < baseline * 1.5, op


class TestUncachedFile:
    @pytest.fixture(scope="class")
    def results(self):
        return _run(4 << 20, 8 << 10, cache_bytes=1 << 20)

    def test_random_read_slower_than_sequential(self, results):
        """Losing readahead batching costs device round trips."""
        assert results["random_read"] > results["read"]

    def test_random_write_slower_than_sequential(self, results):
        assert results["random_write"] > results["write"]

    def test_reread_matches_read_when_thrashing(self, results):
        """Sequential LRU thrash: the reread streams again, same cost."""
        ratio = results["reread"] / results["read"]
        assert 0.8 < ratio < 1.2

    def test_rewrite_pays_writeback_again(self, results):
        ratio = results["rewrite"] / results["write"]
        assert 0.8 < ratio < 1.2


class TestConfidentialOverheadShape:
    def test_random_io_overhead_exceeds_sequential(self):
        """More device requests per byte -> more exits -> more overhead."""
        kinds = {}
        for kind in ("normal", "cvm"):
            kinds[kind] = _run(4 << 20, 8 << 10, cache_bytes=1 << 20, kind=kind)

        def overhead(op):
            return (kinds["cvm"][op] - kinds["normal"][op]) / kinds["normal"][op]

        assert overhead("random_read") > overhead("read")
