"""SWIOTLB bounce-buffer allocator."""

import pytest

from repro.cycles import Category, CycleLedger, DEFAULT_COSTS
from repro.errors import MemoryError_
from repro.guest.swiotlb import MAX_MAPPING, Swiotlb

BASE = 1 << 38


@pytest.fixture
def ledger():
    return CycleLedger()


@pytest.fixture
def swiotlb(ledger):
    return Swiotlb(BASE, 64 * 1024, ledger, DEFAULT_COSTS)  # 32 slots


def test_map_returns_in_window(swiotlb):
    gpa = swiotlb.map_single(4096)
    assert BASE <= gpa < BASE + 64 * 1024


def test_slots_accounting(swiotlb):
    assert swiotlb.free_slots == 32
    swiotlb.map_single(4096)  # 2 slots
    assert swiotlb.free_slots == 30


def test_unmap_returns_slots(swiotlb):
    gpa = swiotlb.map_single(6000)
    swiotlb.unmap_single(gpa)
    assert swiotlb.free_slots == 32


def test_mappings_do_not_overlap(swiotlb):
    a = swiotlb.map_single(4096)
    b = swiotlb.map_single(4096)
    assert abs(a - b) >= 4096


def test_mapping_is_contiguous_slots(swiotlb):
    """A 3-slot mapping occupies a contiguous GPA run."""
    gpa = swiotlb.map_single(3 * 2048)
    # Overlapping single-slot mappings must avoid the whole run.
    others = [swiotlb.map_single(2048) for _ in range(29)]
    for other in others:
        assert not gpa <= other < gpa + 3 * 2048


def test_exhaustion(swiotlb):
    for _ in range(32):
        swiotlb.map_single(2048)
    with pytest.raises(MemoryError_):
        swiotlb.map_single(2048)


def test_max_mapping_enforced(swiotlb):
    with pytest.raises(MemoryError_):
        swiotlb.map_single(MAX_MAPPING + 1)


def test_unmap_unmapped_rejected(swiotlb):
    with pytest.raises(MemoryError_):
        swiotlb.unmap_single(BASE)


def test_reuse_after_unmap(swiotlb):
    first = [swiotlb.map_single(2048) for _ in range(32)]
    for gpa in first:
        swiotlb.unmap_single(gpa)
    again = swiotlb.map_single(16 * 1024)
    assert BASE <= again < BASE + 64 * 1024


def test_bounce_charges_copy(swiotlb, ledger):
    swiotlb.bounce(10_000)
    assert ledger.by_category()[Category.COPY] == DEFAULT_COSTS.copy_bytes(10_000)


class TestBatchedMappings:
    def test_map_many_allocates_all(self, swiotlb):
        gpas = swiotlb.map_many([4096, 2048, 6000])
        assert len(gpas) == len(set(gpas)) == 3
        assert swiotlb.free_slots == 32 - (2 + 1 + 3)
        swiotlb.unmap_many(gpas)
        assert swiotlb.free_slots == 32

    def test_map_many_rolls_back_on_exhaustion(self, swiotlb):
        # 3 x 20KB = 30 slots fit; the 4th mapping cannot.
        with pytest.raises(MemoryError_):
            swiotlb.map_many([20 * 1024] * 4)
        # All-or-nothing: the three successful mappings were released.
        assert swiotlb.free_slots == 32
        assert swiotlb.map_many([20 * 1024] * 3)  # pool still healthy

    def test_map_many_rolls_back_on_oversized_member(self, swiotlb):
        with pytest.raises(MemoryError_):
            swiotlb.map_many([4096, MAX_MAPPING + 1])
        assert swiotlb.free_slots == 32

    def test_bounce_many_charges_sum_of_singles(self, ledger, swiotlb):
        lengths = [4096, 2048, 100]
        swiotlb.bounce_many(lengths)
        batched = ledger.by_category()[Category.COPY]
        reference = CycleLedger()
        single = Swiotlb(BASE, 64 * 1024, reference, DEFAULT_COSTS)
        for length in lengths:
            single.bounce(length)
        assert batched == reference.by_category()[Category.COPY]
