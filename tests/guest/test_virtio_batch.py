"""Batched virtio data plane: exits, interrupts, slots, determinism.

End-to-end (full Machine) pins for the PR-8 batching semantics: a
``*_many`` batch costs one doorbell kick and -- with EVENT_IDX-style
suppression -- one interrupt; SWIOTLB slots balance to zero across every
batch (including refused ones); refused completions surface as typed
:class:`~repro.errors.VirtioIoError` with the device status attached;
and the batched ablation is bit-deterministic run to run.
"""

import pytest

from repro.errors import VirtioIoError
from repro.machine import Machine, MachineConfig

_IMAGE = b"batch-guest" * 80


def _blk_machine(event_idx: bool = True):
    machine = Machine(MachineConfig())
    session = machine.launch_confidential_vm(image=_IMAGE)
    machine.attach_virtio_block(session, event_idx=event_idx)
    return machine, session


def _net_machine(event_idx: bool = True):
    machine = Machine(MachineConfig())
    session = machine.launch_confidential_vm(image=_IMAGE)
    machine.attach_virtio_net(session, event_idx=event_idx)
    return machine, session


class TestBatchKickSemantics:
    def test_write_many_one_kick_one_irq(self):
        machine, session = _blk_machine(event_idx=True)

        def workload(ctx):
            blk = ctx.blk_driver()
            blk.write_many([(i * 8, bytes(512)) for i in range(8)])

        machine.run(session, workload)
        device = session.virtio_blk
        assert device.kicks == 1
        assert device.drains == 1
        assert device.completions == 8
        assert device.irqs_raised == 1  # suppressed: one pulse per drain

    def test_naive_writes_kick_and_interrupt_per_request(self):
        machine, session = _blk_machine(event_idx=False)

        def workload(ctx):
            blk = ctx.blk_driver()
            for i in range(8):
                blk.write(i * 8, bytes(512))

        machine.run(session, workload)
        device = session.virtio_blk
        assert device.kicks == 8
        assert device.irqs_raised == 8  # naive arm: one pulse per descriptor

    def test_batch_reduces_mmio_exits_for_same_work(self):
        counts = {}
        for arm, event_idx, depth in (("naive", False, 1), ("batched", True, 8)):
            machine, session = _blk_machine(event_idx=event_idx)

            def workload(ctx, depth=depth):
                blk = ctx.blk_driver()
                requests = [(i * 8, bytes(512)) for i in range(8)]
                if depth == 1:
                    for sector, payload in requests:
                        blk.write(sector, payload)
                else:
                    blk.write_many(requests)

            exits_before = machine.hypervisor.mmio_exits
            machine.run(session, workload)
            counts[arm] = machine.hypervisor.mmio_exits - exits_before
        assert counts["naive"] == 8
        assert counts["batched"] == 1
        assert counts["naive"] / counts["batched"] >= 2

    def test_write_many_read_many_roundtrip(self):
        machine, session = _blk_machine()

        def workload(ctx):
            blk = ctx.blk_driver()
            blk.write_many([(0, b"a" * 512), (8, b"b" * 512)])
            return blk.read_many([(0, 512), (8, 512)])

        payloads = machine.run(session, workload)["workload_result"]
        assert payloads == [b"a" * 512, b"b" * 512]

    def test_net_send_many_one_kick(self):
        machine, session = _net_machine()
        session.virtio_net.host_handler = lambda frame, header: []

        def workload(ctx):
            net = ctx.net_driver()
            net.send_many([b"frame-%d" % i for i in range(6)])

        machine.run(session, workload)
        device = session.virtio_net
        assert device.kicks == 1
        assert device.tx_frames == 6
        assert device.irqs_raised == 1

    def test_recv_many_drains_backlog(self):
        machine, session = _net_machine()

        def workload(ctx):
            net = ctx.net_driver()
            net.post_rx_buffers(8)
            for i in range(5):
                session.virtio_net.host_deliver(b"rx-%d" % i)
            ctx.deliver_pending_irqs()
            return net.recv_many()

        frames = machine.run(session, workload)["workload_result"]
        assert frames == [b"rx-%d" % i for i in range(5)]
        # Buffers were batch re-posted: the ring is back at full strength.
        assert len(session.virtio_net.queues[1].available) == 8


class TestBatchSlotBalance:
    def test_slots_balance_after_batches(self):
        machine, session = _blk_machine()

        def workload(ctx):
            blk = ctx.blk_driver()
            free_before = blk.swiotlb.free_slots
            blk.write_many([(i * 8, bytes(2048)) for i in range(6)])
            blk.read_many([(0, 2048), (8, 2048)])
            return free_before - blk.swiotlb.free_slots

        leaked = machine.run(session, workload)["workload_result"]
        assert leaked == 0

    def test_slots_released_when_batch_refused(self):
        machine, session = _blk_machine()

        def workload(ctx):
            blk = ctx.blk_driver()
            device = session.virtio_blk
            free_before = blk.swiotlb.free_slots
            try:
                blk.write_many([
                    (0, bytes(512)),
                    (device.capacity_sectors + 1, bytes(512)),  # refused
                ])
            except VirtioIoError as refusal:
                error = refusal
            else:
                error = None
            return error, free_before - blk.swiotlb.free_slots

        error, leaked = machine.run(session, workload)["workload_result"]
        assert error is not None and error.status == 1  # STATUS_IOERR
        assert leaked == 0  # every bounce slot released despite the refusal


class TestBatchDeterminism:
    def test_iozone_batched_arm_is_deterministic(self):
        from repro.workloads.iozone import iozone_workload

        totals = []
        for _ in range(2):
            machine, session = _blk_machine()
            machine.run(session, iozone_workload(
                2 << 20, 64 << 10, cache_bytes=1 << 20, queue_depth=8))
            totals.append((machine.ledger.total,
                           session.virtio_blk.kicks,
                           session.virtio_blk.irqs_raised,
                           session.virtio_blk.io_errors))
        assert totals[0] == totals[1]

    def test_doorbell_ablation_is_deterministic(self):
        from repro.bench.ipc import run_doorbell_stream

        runs = [run_doorbell_stream(messages=64, burst=32, adaptive=True)
                for _ in range(2)]
        assert runs[0] == runs[1]
        assert runs[0]["suppressed"] > 0
