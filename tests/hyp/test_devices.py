"""MMIO device registry and the console device."""

import pytest

from repro.errors import ConfigurationError
from repro.hyp.devices import ConsoleDevice, MmioDevice, MmioRegistry


def test_console_collects_output():
    console = ConsoleDevice(0x1000_0000)
    for byte in b"hi!":
        console.mmio_store(ConsoleDevice.DATA, byte, 1)
    assert bytes(console.output) == b"hi!"


def test_console_status_always_ready():
    console = ConsoleDevice(0x1000_0000)
    assert console.mmio_load(ConsoleDevice.STATUS, 4) == 1


def test_registry_address_decode():
    registry = MmioRegistry()
    a = registry.add(MmioDevice("a", 0x1000_0000))
    b = registry.add(MmioDevice("b", 0x1000_1000))
    assert registry.find(0x1000_0800) is a
    assert registry.find(0x1000_1000) is b
    assert registry.find(0x1000_2000) is None


def test_registry_rejects_overlap():
    registry = MmioRegistry()
    registry.add(MmioDevice("a", 0x1000_0000, 0x2000))
    with pytest.raises(ConfigurationError):
        registry.add(MmioDevice("b", 0x1000_1000))


def test_claims_boundaries():
    device = MmioDevice("d", 0x1000_0000, 0x1000)
    assert device.claims(0x1000_0000)
    assert device.claims(0x1000_0FFF)
    assert not device.claims(0x1000_1000)
    assert not device.claims(0x0FFF_FFFF)
