"""virtio-rng: device behaviour and the guest driver's defensive mixing."""

import pytest

from repro import Machine, MachineConfig


@pytest.fixture
def env(machine):
    session = machine.launch_confidential_vm(image=b"rng" * 100)
    device = machine.attach_virtio_rng(session)
    return machine, session, device


def test_read_returns_requested_bytes(env):
    machine, session, device = env

    def workload(ctx):
        return ctx.rng_driver().read(48)

    data = machine.run(session, workload)["workload_result"]
    assert len(data) == 48
    assert data != bytes(48)
    assert device.bytes_served == 48


def test_successive_reads_differ(env):
    machine, session, device = env

    def workload(ctx):
        driver = ctx.rng_driver()
        return driver.read(32), driver.read(32)

    a, b = machine.run(session, workload)["workload_result"]
    assert a != b


def test_output_is_not_raw_host_entropy(env):
    """The defensive mix: a host that controls the device cannot choose
    the guest's entropy (the output never equals the device payload)."""
    machine, session, device = env
    served = []
    original = device._entropy

    def spying_entropy(count):
        data = original(count)
        served.append(data)
        return data

    device._entropy = spying_entropy

    def workload(ctx):
        return ctx.rng_driver().read(32)

    mixed = machine.run(session, workload)["workload_result"]
    assert served and mixed != served[0]


def test_malicious_all_zero_host_entropy_still_yields_entropy(env):
    machine, session, device = env
    device._entropy = lambda count: bytes(count)  # hostile: all zeros

    def workload(ctx):
        driver = ctx.rng_driver()
        return driver.read(32), driver.read(32)

    a, b = machine.run(session, workload)["workload_result"]
    assert a != bytes(32)
    assert a != b  # SM randomness still differentiates reads


def test_rng_request_is_a_device_round_trip(env):
    machine, session, device = env
    exits_before = session.cvm.exit_count

    def workload(ctx):
        ctx.rng_driver().read(16)

    machine.run(session, workload)
    # Kick exit (+ the completion IRQ arrives during it) + halt.
    assert session.cvm.exit_reasons.get("mmio_store", 0) >= 1


def test_device_deterministic_per_seed():
    from repro.cycles import CycleLedger, DEFAULT_COSTS
    from repro.hyp.virtio import VirtioRngDevice
    from repro.isa.iopmp import IopmpUnit
    from repro.mem.physmem import MemoryBus, PhysicalMemory

    def build(seed):
        dram = PhysicalMemory(0x8000_0000, 1 << 20)
        bus = MemoryBus(dram, IopmpUnit())
        return VirtioRngDevice(0x1000_3000, 3, bus, CycleLedger(), DEFAULT_COSTS, seed=seed)

    assert build(b"s")._entropy(32) == build(b"s")._entropy(32)
    assert build(b"s")._entropy(32) != build(b"t")._entropy(32)
