"""The KVM-like hypervisor: normal VMs, CVM hosting, pool expansion."""

import pytest

from repro.cycles import Category
from repro.mem.pagetable import Sv39x4
from repro.mem.physmem import PAGE_SIZE


class Raw:
    def __init__(self, dram):
        self.dram = dram

    def read_u64(self, a):
        return self.dram.read_u64(a)

    def write_u64(self, a, v):
        self.dram.write_u64(a, v)


class TestNormalVmPath:
    def test_create_allocates_root_in_normal_memory(self, machine):
        vm = machine.hypervisor.create_normal_vm("vm0", machine.hart)
        assert vm.hgatp_root is not None
        assert not machine.monitor.pool.contains(vm.hgatp_root, 16 * 1024)

    def test_stage2_fault_maps_frame(self, machine):
        vm = machine.hypervisor.create_normal_vm("vm0", machine.hart)
        gpa = vm.layout.dram_base + 0x5000
        pa = machine.hypervisor.handle_normal_stage2_fault(machine.hart, vm, gpa)
        result = Sv39x4().walk(Raw(machine.dram), vm.hgatp_root, gpa)
        assert result.pa == pa
        assert vm.fault_count == 1

    def test_fault_cost_dominated_by_gup(self, machine):
        vm = machine.hypervisor.create_normal_vm("vm0", machine.hart)
        with machine.ledger.span() as span:
            machine.hypervisor.handle_normal_stage2_fault(
                machine.hart, vm, vm.layout.dram_base
            )
        assert span.cycles > machine.costs.kvm_fault_fixed

    def test_exit_enter_mode_transitions(self, machine):
        from repro.isa.privilege import PrivilegeMode

        machine.hypervisor.normal_vm_enter(machine.hart)
        assert machine.hart.mode is PrivilegeMode.VS
        machine.hypervisor.normal_vm_exit(machine.hart)
        assert machine.hart.mode is PrivilegeMode.HS


class TestCvmHosting:
    def test_host_create_provisions_everything(self, machine):
        handle = machine.hypervisor.host_create_cvm(
            machine.monitor, machine.hart, image=b"img" * 100
        )
        assert handle.shared_vcpu_pages[0]
        assert handle.shared_subtrees
        assert handle.shared_window_base is not None
        cvm = machine.monitor.cvms[handle.cvm_id]
        assert cvm.measurement is not None

    def test_shared_window_translation(self, machine):
        handle = machine.hypervisor.host_create_cvm(
            machine.monitor, machine.hart, image=b"x"
        )
        layout = handle.layout
        hpa = machine.hypervisor.shared_gpa_to_hpa(handle, layout.shared_base + 0x2345)
        assert hpa == handle.shared_window_base + 0x2345

    def test_shared_translation_rejects_private_gpa(self, machine):
        handle = machine.hypervisor.host_create_cvm(
            machine.monitor, machine.hart, image=b"x"
        )
        with pytest.raises(ValueError):
            machine.hypervisor.shared_gpa_to_hpa(handle, handle.layout.dram_base)

    def test_shared_window_mapped_in_subtree(self, machine):
        """The premapped window is really present in the shared tables."""
        handle = machine.hypervisor.host_create_cvm(
            machine.monitor, machine.hart, image=b"x", shared_window=1 << 20
        )
        cvm = machine.monitor.cvms[handle.cvm_id]
        result = Sv39x4().walk(
            Raw(machine.dram), cvm.hgatp_root, handle.layout.shared_base + 0x8000
        )
        assert result is not None
        assert result.pa == handle.shared_window_base + 0x8000

    def test_window_larger_than_region_rejected(self, machine):
        from repro.sm.cvm import GpaLayout

        with pytest.raises(ValueError):
            machine.hypervisor.host_create_cvm(
                machine.monitor, machine.hart,
                layout=GpaLayout(shared_size=1 << 20), shared_window=2 << 20,
            )


class TestPoolExpansion:
    def test_expansion_registers_contiguous_chunk(self, machine):
        regions_before = len(machine.monitor.pool.regions)
        free_before = machine.monitor.pool.free_blocks
        machine.hypervisor.on_pool_expand_request(machine.monitor)
        assert len(machine.monitor.pool.regions) == regions_before + 1
        assert machine.monitor.pool.free_blocks > free_before
        assert machine.hypervisor.pool_expansions >= 1

    def test_expansion_charges_hyp_cost(self, machine):
        with machine.ledger.span() as span:
            machine.hypervisor.on_pool_expand_request(machine.monitor)
        assert span.breakdown[Category.HYP_LOGIC] >= machine.costs.hyp_expand_cost
