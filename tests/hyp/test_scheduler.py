"""RoundRobinScheduler block/wake edge cases (repro.hyp.scheduler)."""

from repro.hyp.scheduler import RoundRobinScheduler


def _sched(*items):
    sched = RoundRobinScheduler()
    for item in items:
        sched.add(item)
    return sched


def test_rotation_moves_item_to_tail():
    sched = _sched("a", "b")
    assert sched.next() == "a"
    assert sched.next() == "b"
    assert sched.next() == "a"


def test_next_on_empty_returns_none():
    assert RoundRobinScheduler().next() is None


def test_block_parks_item_out_of_rotation():
    sched = _sched("a", "b")
    sched.block("a")
    assert len(sched) == 1
    assert sched.blocked_count == 1
    assert sched.next() == "b"
    assert sched.next() == "b"


def test_block_of_absent_item_is_noop():
    sched = _sched("a")
    sched.block("ghost")
    assert sched.blocked_count == 0
    assert sched.wake("ghost") is False


def test_remove_of_blocked_item_drops_it_entirely():
    sched = _sched("a", "b")
    sched.block("a")
    sched.remove("a")
    assert sched.blocked_count == 0
    # A removed item must never resurface via wake.
    assert sched.wake("a") is False
    assert len(sched) == 1
    assert sched.next() == "b"


def test_wake_after_remove_does_not_resurrect():
    sched = _sched("a")
    sched.remove("a")
    assert sched.wake("a") is False
    assert len(sched) == 0
    assert sched.next() is None


def test_wake_returns_item_to_rotation_once():
    sched = _sched("a", "b")
    sched.block("b")
    assert sched.wake("b") is True
    assert sched.wake("b") is False  # already runnable: no double-add
    assert len(sched) == 2


def test_wake_all_unparks_in_block_order():
    sched = _sched("a", "b", "c", "d")
    sched.block("c")
    sched.block("a")
    sched.block("d")
    assert sched.wake_all() == 3
    assert sched.blocked_count == 0
    # Remaining rotation: b (never blocked), then c, a, d in block order.
    assert [sched.next() for _ in range(4)] == ["b", "c", "a", "d"]


def test_wake_all_on_empty_returns_zero():
    assert RoundRobinScheduler().wake_all() == 0


def test_double_block_keeps_single_parked_entry():
    sched = _sched("a")
    sched.block("a")
    sched.block("a")  # second block: item no longer runnable, no-op
    assert sched.blocked_count == 1
    assert sched.wake("a") is True
    assert len(sched) == 1


def test_stats_counts_parks_and_wakes():
    sched = _sched("a", "b")
    sched.block("a")
    sched.wake("a")
    sched.block("b")
    sched.wake("b", front=True)
    assert sched.stats() == {
        "parks": 2, "wakes": 2, "front_wakes": 1, "wake_all_calls": 0,
    }


def test_stats_counts_wake_all_only_when_it_woke_someone():
    sched = _sched("a", "b")
    sched.wake_all()  # nobody parked: not a wake-all event
    sched.block("a")
    sched.block("b")
    sched.wake_all()
    stats = sched.stats()
    assert stats["wake_all_calls"] == 1
    assert stats["parks"] == 2
    assert stats["wakes"] == 2  # wake_all routes through wake()


def test_stats_ignore_noop_blocks_and_failed_wakes():
    sched = _sched("a")
    sched.block("ghost")  # absent: no park
    sched.wake("ghost")   # absent: no wake
    sched.block("a")
    sched.block("a")      # second block is a no-op
    assert sched.stats()["parks"] == 1
    assert sched.stats()["wakes"] == 0
