"""Crash-proof device error paths (PR 8 regression pins).

Every descriptor field is guest-posted and every RX frame is
host-delivered -- both are untrusted inputs to the device models.  The
invariant pinned here: **no such input can raise an untyped exception
through a device model**.  Refused requests complete with a virtio
status byte, undeliverable frames are dropped with the buffer re-posted,
and host-configuration problems surface as typed ``VirtioError``
subclasses.  Only architectural DMA faults (``TrapRaised`` from the
IOPMP) may propagate -- they model the hardware stopping a DMA attack.
"""

import pytest

from repro.cycles import CycleLedger, DEFAULT_COSTS
from repro.errors import ReproError, VirtioDmaError, VirtioError, VirtqueueOverflow
from repro.hyp.virtio import (
    STATUS_IOERR,
    STATUS_OK,
    STATUS_UNSUPP,
    Descriptor,
    VirtioBlockDevice,
    VirtioNetDevice,
    VirtioRngDevice,
    Virtqueue,
)
from repro.isa.iopmp import IopmpEntry, IopmpUnit
from repro.mem.physmem import MemoryBus, PhysicalMemory

BASE = 0x8000_0000
BUF = BASE + 0x10000


@pytest.fixture
def env():
    dram = PhysicalMemory(BASE, 4 << 20)
    iopmp = IopmpUnit()
    iopmp.add_entry(IopmpEntry(base=BASE, size=4 << 20, readable=True, writable=True))
    bus = MemoryBus(dram, iopmp)
    return dram, bus, CycleLedger()


def _blk(env, **kwargs):
    _dram, bus, ledger = env
    device = VirtioBlockDevice(0x1000_1000, 1, bus, ledger, DEFAULT_COSTS, **kwargs)
    device.dma_translate = lambda gpa: gpa
    queue = Virtqueue(ring_gpa=BUF)
    device.attach_queue(0, queue)
    return device, queue


def _net(env, **kwargs):
    _dram, bus, ledger = env
    device = VirtioNetDevice(0x1000_2000, 2, bus, ledger, DEFAULT_COSTS, **kwargs)
    device.dma_translate = lambda gpa: gpa
    tx, rx = Virtqueue(ring_gpa=BUF), Virtqueue(ring_gpa=BUF + 0x1000)
    device.attach_queue(device.TX_QUEUE, tx)
    device.attach_queue(device.RX_QUEUE, rx)
    return device, tx, rx


class TestBlockErrorCompletion:
    """Satellite 1: beyond-capacity requests complete, never raise."""

    def test_write_beyond_capacity_error_completes(self, env):
        device, queue = _blk(env)
        queue.post(Descriptor(gpa=BUF, length=4096, payload=4096,
                              header={"type": "write",
                                      "sector": device.capacity_sectors - 1}))
        device.process_queue(0)
        done = queue.pop_used()
        assert done.status == STATUS_IOERR
        assert device.io_errors == 1 and device.writes == 0

    def test_read_beyond_capacity_error_completes(self, env):
        device, queue = _blk(env)
        queue.post(Descriptor(gpa=BUF, length=512, device_writes=True,
                              header={"type": "read",
                                      "sector": device.capacity_sectors + 7}))
        device.process_queue(0)
        done = queue.pop_used()
        assert done.status == STATUS_IOERR
        assert device.reads == 0

    def test_bad_request_mid_batch_keeps_queue_consistent(self, env):
        """One refused descriptor must not strand the rest of the drain."""
        device, queue = _blk(env)
        queue.post(Descriptor(gpa=BUF, length=512, payload=512,
                              header={"type": "write", "sector": 0}))
        queue.post(Descriptor(gpa=BUF, length=512, payload=512,
                              header={"type": "write",
                                      "sector": device.capacity_sectors}))
        queue.post(Descriptor(gpa=BUF, length=512, payload=512,
                              header={"type": "write", "sector": 8}))
        device.process_queue(0)
        statuses = [queue.pop_used().status for _ in range(3)]
        assert statuses == [STATUS_OK, STATUS_IOERR, STATUS_OK]
        assert queue.pop_used() is None  # used ring fully drained
        assert not queue.available  # nothing stranded
        assert device.writes == 2 and device.io_errors == 1


class TestRxFrameDrop:
    """Satellite 2: oversized/malformed RX frames drop without ring loss."""

    def test_oversized_frame_mid_backlog(self, env):
        device, _tx, rx = _net(env)
        for i in range(3):
            rx.post(Descriptor(gpa=BUF + 0x3000 + i * 0x800, length=64,
                               device_writes=True))
        device._host_backlog.extend([b"a" * 16, b"x" * 256, b"c" * 16])
        device._flush_rx()
        # The middle frame dropped; the other two delivered in order.
        assert device.rx_dropped == 1 and device.rx_frames == 2
        assert rx.pop_used().payload == b"a" * 16
        assert rx.pop_used().payload == b"c" * 16
        # Three buffers posted, two consumed: one survives for later frames.
        assert len(rx.available) == 1

    def test_non_payload_frame_dropped(self, env):
        device, _tx, rx = _net(env)
        rx.post(Descriptor(gpa=BUF + 0x3000, length=64, device_writes=True))
        device.host_deliver("not-a-frame")  # payload_len raises TypeError
        assert device.rx_dropped == 1
        assert len(rx.available) == 1  # buffer untouched
        device.host_deliver(b"ok")
        assert device.rx_frames == 1


class TestTypedTransportErrors:
    """Satellite 3: overflow and missing-DMA are typed, not bare RuntimeError."""

    def test_virtqueue_overflow_typed(self):
        queue = Virtqueue(ring_gpa=BUF, size=1)
        queue.post(Descriptor(gpa=BUF, length=8))
        with pytest.raises(VirtqueueOverflow) as excinfo:
            queue.post(Descriptor(gpa=BUF, length=8))
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, VirtioError)

    def test_missing_dma_translation_typed(self, env):
        _dram, bus, ledger = env
        device = VirtioBlockDevice(0x1000_1000, 1, bus, ledger, DEFAULT_COSTS)
        queue = Virtqueue(ring_gpa=BUF)
        device.attach_queue(0, queue)  # dma_translate never installed
        queue.post(Descriptor(gpa=BUF, length=512, payload=512,
                              header={"type": "write", "sector": 0}))
        with pytest.raises(VirtioDmaError) as excinfo:
            device.process_queue(0)
        assert isinstance(excinfo.value, ReproError)


class TestMixedRegionRead:
    """Satellite 4: mixed real/symbolic disk reads refuse explicitly."""

    def test_mixed_read_error_completes(self, env):
        device, queue = _blk(env)
        queue.post(Descriptor(gpa=BUF, length=512, payload=b"r" * 512,
                              header={"type": "write", "sector": 0}))
        queue.post(Descriptor(gpa=BUF, length=512, payload=512,
                              header={"type": "write", "sector": 1}))
        device.process_queue(0)
        queue.pop_used(), queue.pop_used()
        # A read spanning the real sector 0 and the symbolic sector 1.
        queue.post(Descriptor(gpa=BUF, length=1024, device_writes=True,
                              header={"type": "read", "sector": 0}))
        device.process_queue(0)
        done = queue.pop_used()
        assert done.status == STATUS_IOERR  # refused, not zero-substituted
        assert device.io_errors == 1

    def test_all_real_and_all_symbolic_still_serve(self, env):
        device, queue = _blk(env)
        queue.post(Descriptor(gpa=BUF, length=512, payload=b"r" * 512,
                              header={"type": "write", "sector": 0}))
        queue.post(Descriptor(gpa=BUF, length=512, payload=512,
                              header={"type": "write", "sector": 4}))
        device.process_queue(0)
        queue.pop_used(), queue.pop_used()
        queue.post(Descriptor(gpa=BUF, length=512, device_writes=True,
                              header={"type": "read", "sector": 0}))
        queue.post(Descriptor(gpa=BUF, length=512, device_writes=True,
                              header={"type": "read", "sector": 4}))
        device.process_queue(0)
        real = queue.pop_used()
        symbolic = queue.pop_used()
        assert real.status == STATUS_OK and real.payload == b"r" * 512
        assert symbolic.status == STATUS_OK and symbolic.payload == 512


#: Guest-controlled garbage: every field an adversarial driver can set.
_NASTY_DESCRIPTORS = [
    dict(length="sixty-four", payload=64),
    dict(length=-1, payload=64),
    dict(length=True, payload=64),
    dict(length=None, payload=64),
    dict(length=512, payload=512, header="not-a-dict"),
    dict(length=512, payload=512, header={"type": "write", "sector": "zero"}),
    dict(length=512, payload=512, header={"type": "write", "sector": -9}),
    dict(length=512, payload=512, header={"type": "write", "sector": True}),
    dict(length=512, payload="text", header={"type": "write", "sector": 0}),
    dict(length=512, payload=None, header={"type": "write", "sector": 0}),
    dict(length=512, payload=-5, header={"type": "write", "sector": 0}),
]


class TestNoUntypedExceptions:
    """The pin: guest-posted garbage never unwinds through a device model."""

    @pytest.mark.parametrize("fields", _NASTY_DESCRIPTORS)
    def test_blk_survives(self, env, fields):
        device, queue = _blk(env)
        queue.post(Descriptor(gpa=BUF, **fields))
        device.process_queue(0)  # raises nothing
        done = queue.pop_used()
        assert done.status in (STATUS_IOERR, STATUS_UNSUPP)
        assert device.io_errors == 1

    # Only transport-level garbage applies to net TX: the net device does
    # not interpret block headers, so a bogus "sector" is legitimately OK.
    @pytest.mark.parametrize("fields", _NASTY_DESCRIPTORS[:5])
    def test_net_tx_survives(self, env, fields):
        device, tx, _rx = _net(env)
        fields = dict(fields)
        fields.setdefault("header", {})
        tx.post(Descriptor(gpa=BUF, **fields))
        device.process_queue(device.TX_QUEUE)
        done = tx.pop_used()
        assert done.status == STATUS_UNSUPP
        assert device.tx_frames == 0

    @pytest.mark.parametrize("fields", _NASTY_DESCRIPTORS[:4])
    def test_rng_survives(self, env, fields):
        _dram, bus, ledger = env
        device = VirtioRngDevice(0x1000_3000, 3, bus, ledger, DEFAULT_COSTS)
        device.dma_translate = lambda gpa: gpa
        queue = Virtqueue(ring_gpa=BUF)
        device.attach_queue(0, queue)
        fields = dict(fields)
        fields.pop("payload", None)
        queue.post(Descriptor(gpa=BUF, **fields))
        device.process_queue(0)
        done = queue.pop_used()
        assert done.status == STATUS_UNSUPP
