"""Virtio devices: queues, DMA checking, block and net semantics."""

import pytest

from repro.cycles import Category, CycleLedger, DEFAULT_COSTS
from repro.errors import ReproError, TrapRaised, VirtqueueOverflow
from repro.hyp.virtio import (
    STATUS_IOERR,
    STATUS_OK,
    Descriptor,
    VirtioBlockDevice,
    VirtioNetDevice,
    Virtqueue,
    payload_len,
)
from repro.isa.iopmp import IopmpEntry, IopmpUnit
from repro.mem.physmem import MemoryBus, PhysicalMemory

BASE = 0x8000_0000
BUF = BASE + 0x10000


@pytest.fixture
def env():
    dram = PhysicalMemory(BASE, 4 << 20)
    iopmp = IopmpUnit()
    iopmp.add_entry(IopmpEntry(base=BASE, size=4 << 20, readable=True, writable=True))
    bus = MemoryBus(dram, iopmp)
    ledger = CycleLedger()
    return dram, bus, ledger


def _identity(gpa):
    return gpa


class TestPayloads:
    def test_payload_len(self):
        assert payload_len(b"abc") == 3
        assert payload_len(bytearray(5)) == 5
        assert payload_len(4096) == 4096

    def test_bad_payload_rejected(self):
        with pytest.raises(TypeError):
            payload_len(-1)
        with pytest.raises(TypeError):
            payload_len("text")


class TestVirtqueue:
    def test_post_and_overflow(self):
        q = Virtqueue(ring_gpa=BUF, size=2)
        q.post(Descriptor(gpa=BUF, length=8))
        q.post(Descriptor(gpa=BUF, length=8))
        with pytest.raises(VirtqueueOverflow):
            q.post(Descriptor(gpa=BUF, length=8))
        # Typed per PR-3 discipline: callers can catch the repo's base class.
        assert issubclass(VirtqueueOverflow, ReproError)

    def test_pop_used_empty(self):
        assert Virtqueue(ring_gpa=BUF).pop_used() is None


class TestVirtioBlock:
    @pytest.fixture
    def blk(self, env):
        dram, bus, ledger = env
        device = VirtioBlockDevice(0x1000_1000, 1, bus, ledger, DEFAULT_COSTS)
        device.dma_translate = _identity
        queue = Virtqueue(ring_gpa=BUF)
        device.attach_queue(0, queue)
        return device, queue, dram, ledger

    def test_write_then_read_roundtrip(self, blk):
        device, queue, dram, _ = blk
        dram.write(BUF, b"disk-data" + bytes(503))
        queue.post(Descriptor(gpa=BUF, length=512, payload=dram.read(BUF, 512),
                              header={"type": "write", "sector": 4}))
        device.process_queue(0)
        assert queue.pop_used() is not None
        assert device.writes == 1
        queue.post(Descriptor(gpa=BUF + 0x1000, length=512, device_writes=True,
                              header={"type": "read", "sector": 4}))
        device.process_queue(0)
        done = queue.pop_used()
        assert done.payload[:9] == b"disk-data"
        assert dram.read(BUF + 0x1000, 9) == b"disk-data"

    def test_symbolic_payloads_take_same_path(self, blk):
        device, queue, _, ledger = blk
        queue.post(Descriptor(gpa=BUF, length=8192, payload=8192,
                              header={"type": "write", "sector": 0}))
        device.process_queue(0)
        queue.pop_used()
        queue.post(Descriptor(gpa=BUF, length=8192, device_writes=True,
                              header={"type": "read", "sector": 0}))
        device.process_queue(0)
        done = queue.pop_used()
        assert payload_len(done.payload) == 8192
        assert ledger.by_category()[Category.COPY] >= 2 * DEFAULT_COSTS.copy_bytes(8192)

    def test_read_of_unwritten_sector_is_zeros(self, blk):
        device, queue, _, _ = blk
        queue.post(Descriptor(gpa=BUF, length=512, device_writes=True,
                              header={"type": "read", "sector": 1000}))
        device.process_queue(0)
        assert queue.pop_used().payload == bytes(512)

    def test_beyond_capacity_rejected(self, blk):
        """A beyond-capacity request error-completes; the queue stays usable."""
        device, queue, _, _ = blk
        queue.post(Descriptor(gpa=BUF, length=512,  payload=512,
                              header={"type": "write", "sector": device.capacity_sectors}))
        device.process_queue(0)  # must not raise through the host loop
        done = queue.pop_used()
        assert done is not None and done.status == STATUS_IOERR
        assert device.io_errors == 1
        assert device.writes == 0  # nothing landed on the disk
        # The queue is still consistent: the next request serves normally.
        queue.post(Descriptor(gpa=BUF, length=512, payload=512,
                              header={"type": "write", "sector": 0}))
        device.process_queue(0)
        done = queue.pop_used()
        assert done is not None and done.status == STATUS_OK
        assert device.writes == 1

    def test_completion_raises_interrupt(self, blk):
        device, queue, _, _ = blk
        fired = []
        device.irq_sink = fired.append
        queue.post(Descriptor(gpa=BUF, length=512, payload=512,
                              header={"type": "write", "sector": 0}))
        device.process_queue(0)
        assert fired
        assert device.interrupt_status & 1
        device.mmio_store(device.INTERRUPT_ACK, 1, 4)
        assert not device.interrupt_status

    def test_dma_blocked_by_iopmp(self, env):
        dram, bus, ledger = env
        bus.iopmp.insert_entry(0, IopmpEntry(base=BUF, size=0x1000))  # deny
        device = VirtioBlockDevice(0x1000_1000, 1, bus, ledger, DEFAULT_COSTS)
        device.dma_translate = _identity
        queue = Virtqueue(ring_gpa=BUF)
        device.attach_queue(0, queue)
        queue.post(Descriptor(gpa=BUF, length=512, payload=512,
                              header={"type": "write", "sector": 0}))
        with pytest.raises(TrapRaised):
            device.process_queue(0)


class TestVirtioNet:
    @pytest.fixture
    def net(self, env):
        dram, bus, ledger = env
        device = VirtioNetDevice(0x1000_2000, 2, bus, ledger, DEFAULT_COSTS)
        device.dma_translate = _identity
        tx = Virtqueue(ring_gpa=BUF)
        rx = Virtqueue(ring_gpa=BUF + 0x1000)
        device.attach_queue(device.TX_QUEUE, tx)
        device.attach_queue(device.RX_QUEUE, rx)
        return device, tx, rx, dram

    def test_tx_reaches_host_handler(self, net):
        device, tx, rx, dram = net
        seen = []
        device.host_handler = lambda frame, header: seen.append((frame, header)) or []
        dram.write(BUF + 0x2000, b"ping")
        tx.post(Descriptor(gpa=BUF + 0x2000, length=4, payload=b"ping",
                           header={"proto": "test"}))
        device.process_queue(device.TX_QUEUE)
        assert seen == [(b"ping", {"proto": "test"})]
        assert device.tx_frames == 1

    def test_host_reply_lands_in_rx_buffer(self, net):
        device, tx, rx, dram = net
        device.host_handler = lambda frame, header: [b"pong:" + frame]
        rx.post(Descriptor(gpa=BUF + 0x3000, length=2048, device_writes=True))
        tx.post(Descriptor(gpa=BUF + 0x2000, length=4, payload=b"ping"))
        device.process_queue(device.TX_QUEUE)
        done = rx.pop_used()
        assert done.payload == b"pong:ping"
        assert dram.read(BUF + 0x3000, 9) == b"pong:ping"

    def test_host_deliver_without_tx(self, net):
        device, tx, rx, _ = net
        rx.post(Descriptor(gpa=BUF + 0x3000, length=2048, device_writes=True))
        device.host_deliver(b"unsolicited")
        assert rx.pop_used().payload == b"unsolicited"
        assert device.rx_frames == 1

    def test_backlog_waits_for_buffers(self, net):
        device, tx, rx, _ = net
        device.host_deliver(b"queued")
        assert device.backlog == 1
        rx.post(Descriptor(gpa=BUF + 0x3000, length=2048, device_writes=True))
        device.process_queue(device.RX_QUEUE)
        assert device.backlog == 0
        assert rx.pop_used().payload == b"queued"

    def test_oversized_rx_frame_rejected(self, net):
        """An oversized frame is dropped; the RX buffer survives for the next."""
        device, tx, rx, _ = net
        rx.post(Descriptor(gpa=BUF + 0x3000, length=16, device_writes=True))
        device.host_deliver(b"x" * 64)  # must not raise mid-drain
        assert device.rx_dropped == 1
        assert device.rx_frames == 0
        assert len(rx.available) == 1  # the posted buffer was not lost
        device.host_deliver(b"y" * 16)  # backlog keeps draining afterwards
        assert device.rx_frames == 1
        done = rx.pop_used()
        assert done is not None and done.payload == b"y" * 16

    def test_doorbell_mmio_triggers_processing(self, net):
        device, tx, rx, _ = net
        device.host_handler = lambda frame, header: []
        tx.post(Descriptor(gpa=BUF + 0x2000, length=4, payload=b"ping"))
        device.mmio_store(device.QUEUE_NOTIFY, device.TX_QUEUE, 4)
        assert device.tx_frames == 1
