"""VM records: NormalVm and the host's CVM handle."""

from repro.hyp.vm import CvmHostHandle, NormalVm, VmKind
from repro.sm.cvm import GpaLayout


def test_normal_vm_defaults():
    vm = NormalVm("web")
    assert vm.kind is VmKind.NORMAL
    assert vm.hgatp_root is None
    assert vm.fault_count == 0
    assert vm.layout.dram_base == 0x8000_0000


def test_vmids_unique_across_normal_vms():
    vmids = {NormalVm(f"vm{i}").vmid for i in range(8)}
    assert len(vmids) == 8


def test_custom_layout_respected():
    layout = GpaLayout(dram_size=64 << 20)
    vm = NormalVm("small", layout)
    assert vm.layout.dram_size == 64 << 20


def test_cvm_handle_starts_empty():
    handle = CvmHostHandle(7, GpaLayout())
    assert handle.kind is VmKind.CONFIDENTIAL
    assert handle.cvm_id == 7
    assert handle.shared_vcpu_pages == {}
    assert handle.shared_subtrees == {}
    assert handle.shared_window_base is None
    assert handle.shared_window_size == 0
