"""End-to-end machine engine tests: guest execution, faults, MMIO, I/O."""

import pytest

from repro import Machine, MachineConfig
from repro.cycles import Category
from repro.hyp.devices import ConsoleDevice
from repro.mem.physmem import PAGE_SIZE


class TestComputeAndTimer:
    def test_compute_charges_cycles(self, machine, cvm_session):
        result = machine.run(cvm_session, lambda ctx: ctx.compute(123_456))
        assert result["breakdown"][Category.COMPUTE] >= 123_456

    def test_timer_ticks_cause_world_switches(self, machine, cvm_session):
        ticks = 3
        cycles = machine.config.timer_tick_cycles * ticks + 1000
        machine.run(cvm_session, lambda ctx: ctx.compute(cycles))
        # Entries: 1 initial + one per tick (leave does an exit too).
        assert cvm_session.cvm.entry_count >= ticks
        assert cvm_session.cvm.exit_count >= ticks

    def test_normal_vm_ticks_do_not_touch_the_sm(self, machine, normal_session):
        cycles = machine.config.timer_tick_cycles * 3
        result = machine.run(normal_session, lambda ctx: ctx.compute(cycles))
        assert Category.SM_LOGIC not in result["breakdown"]
        assert result["breakdown"][Category.HYP_LOGIC] > 0


class TestMemory:
    def test_store_load_roundtrip(self, machine, cvm_session):
        base = cvm_session.layout.dram_base

        def workload(ctx):
            ctx.store(base + 0x123000, 0xFEEDFACE)
            return ctx.load(base + 0x123000)

        result = machine.run(cvm_session, workload)
        assert result["workload_result"] == 0xFEEDFACE

    def test_bulk_bytes_roundtrip(self, machine, cvm_session):
        base = cvm_session.layout.dram_base
        payload = bytes(range(256)) * 64  # 16 KB, crosses pages

        def workload(ctx):
            ctx.write_bytes(base + 0x200F00, payload)  # unaligned start
            return ctx.read_bytes(base + 0x200F00, len(payload))

        result = machine.run(cvm_session, workload)
        assert result["workload_result"] == payload

    def test_faults_resolved_by_sm_without_exit(self, machine, cvm_session):
        """Private-page faults must not bounce through the hypervisor."""
        base = cvm_session.layout.dram_base

        def workload(ctx):
            for i in range(10):
                ctx.store(base + (20 << 20) + i * PAGE_SIZE, i)

        exits_before = cvm_session.cvm.exit_count
        machine.run(cvm_session, workload)
        # Only the final halt exit (plus possibly a timer) -- not 10 faults.
        assert cvm_session.cvm.exit_count - exits_before <= 2

    def test_normal_vm_faults_handled_by_kvm(self, machine, normal_session):
        base = normal_session.layout.dram_base
        machine.run(normal_session, lambda ctx: ctx.store(base + 0x5000, 1))
        assert normal_session.normal_vm.fault_count == 1

    def test_tlb_hit_after_first_touch(self, machine, cvm_session):
        base = cvm_session.layout.dram_base

        def workload(ctx):
            ctx.store(base + 0x300000, 1)
            hits_before = machine.translator.tlb.hits
            ctx.load(base + 0x300000)
            return machine.translator.tlb.hits - hits_before

        result = machine.run(cvm_session, workload)
        assert result["workload_result"] == 1

    def test_image_contents_visible_to_guest(self, machine):
        session = machine.launch_confidential_vm(image=b"BOOTMAGIC" + bytes(7))

        def workload(ctx):
            return ctx.read_bytes(session.layout.dram_base, 9)

        assert machine.run(session, workload)["workload_result"] == b"BOOTMAGIC"


class TestMmio:
    def test_cvm_mmio_store_and_load(self, machine, cvm_session):
        console = ConsoleDevice(0x1000_0000)
        machine.hypervisor.devices.add(console)

        def workload(ctx):
            for byte in b"zion":
                ctx.mmio_write(0x1000_0000 + ConsoleDevice.DATA, byte)
            return ctx.mmio_read(0x1000_0000 + ConsoleDevice.STATUS)

        result = machine.run(cvm_session, workload)
        assert bytes(console.output) == b"zion"
        assert result["workload_result"] == 1

    def test_cvm_mmio_goes_through_world_switch(self, machine, cvm_session):
        machine.hypervisor.devices.add(ConsoleDevice(0x1000_0000))
        exits_before = cvm_session.cvm.exit_count
        machine.run(cvm_session, lambda ctx: ctx.mmio_write(0x1000_0000, 0x41))
        assert cvm_session.cvm.exit_count - exits_before >= 2  # mmio + halt
        assert machine.hypervisor.mmio_exits == 1

    def test_normal_vm_mmio_skips_the_sm(self, machine, normal_session):
        console = ConsoleDevice(0x1000_0000)
        machine.hypervisor.devices.add(console)
        result = machine.run(normal_session, lambda ctx: ctx.mmio_write(0x1000_0000, 0x42))
        assert bytes(console.output) == b"\x42"
        assert Category.SM_LOGIC not in result["breakdown"]

    def test_cvm_mmio_costs_more_than_normal(self):
        def workload(ctx):
            for _ in range(10):
                ctx.mmio_write(0x1000_0000, 1)

        costs = {}
        for kind in ("cvm", "normal"):
            machine = Machine(MachineConfig())
            machine.hypervisor.devices.add(ConsoleDevice(0x1000_0000))
            if kind == "cvm":
                session = machine.launch_confidential_vm(image=b"x")
            else:
                session = machine.launch_normal_vm()
            result = machine.run(session, workload)
            costs[kind] = result["cycles"]
        assert costs["cvm"] > costs["normal"]


class TestSmServices:
    def test_attestation_from_guest(self, machine, cvm_session):
        def workload(ctx):
            return ctx.attestation_report(b"my-nonce")

        report = machine.run(cvm_session, workload)["workload_result"]
        assert machine.monitor.attestation.verify_report(report)
        assert report.report_data == b"my-nonce"

    def test_random_from_guest(self, machine, cvm_session):
        result = machine.run(cvm_session, lambda ctx: ctx.get_random(32))
        assert len(result["workload_result"]) == 32

    def test_sm_services_refused_to_normal_vm(self, machine, normal_session):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            machine.run(normal_session, lambda ctx: ctx.get_random(8))


class TestVirtioEndToEnd:
    def test_cvm_block_io_roundtrip(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        machine.attach_virtio_block(session)

        def workload(ctx):
            blk = ctx.blk_driver()
            blk.write(0, b"confidential-file" + bytes(512 - 17))
            return blk.read(0, 512)

        result = machine.run(session, workload)
        assert result["workload_result"][:17] == b"confidential-file"

    def test_normal_vm_block_io_roundtrip(self, machine):
        session = machine.launch_normal_vm()
        machine.attach_virtio_block(session)

        def workload(ctx):
            blk = ctx.blk_driver()
            blk.write(8, b"normal-file" + bytes(512 - 11))
            return blk.read(8, 512)

        result = machine.run(session, workload)
        assert result["workload_result"][:11] == b"normal-file"

    def test_cvm_net_echo(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        net = machine.attach_virtio_net(session)
        net.host_handler = lambda frame, header: [b"echo:" + bytes(frame)]

        def workload(ctx):
            driver = ctx.net_driver()
            driver.post_rx_buffers(4)
            driver.send(b"hello")
            return driver.recv()

        result = machine.run(session, workload)
        assert result["workload_result"] == b"echo:hello"

    def test_block_request_costs_two_exits(self, machine):
        """One kick exit plus one blocking wait for the completion IRQ."""
        session = machine.launch_confidential_vm(image=b"x")
        machine.attach_virtio_block(session)

        def workload(ctx):
            blk = ctx.blk_driver()
            blk.write(0, bytes(512))  # warm up mappings
            exits_before = session.cvm.exit_count
            blk.write(1, bytes(512))
            return session.cvm.exit_count - exits_before

        result = machine.run(session, workload)
        assert result["workload_result"] == 2

    def test_wfi_host_work_cycle(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        net = machine.attach_virtio_net(session)

        def host_work(machine_, session_):
            net.host_deliver(b"wakeup-frame")
            return True

        session.host_work = host_work

        def workload(ctx):
            driver = ctx.net_driver()
            driver.post_rx_buffers(2)
            frame = driver.recv()
            while frame is None:
                ctx.wfi()
                ctx.deliver_pending_irqs()
                frame = driver.recv()
            return frame

        result = machine.run(session, workload)
        assert result["workload_result"] == b"wakeup-frame"


class TestSessionManagement:
    def test_session_cannot_nest(self, machine, cvm_session):
        from repro.errors import ConfigurationError

        def workload(ctx):
            with pytest.raises(ConfigurationError):
                machine._enter_guest(cvm_session)

        machine.run(cvm_session, workload)

    def test_session_reusable_after_run(self, machine, cvm_session):
        machine.run(cvm_session, lambda ctx: ctx.compute(100))
        result = machine.run(cvm_session, lambda ctx: ctx.compute(100))
        assert result["cycles"] > 0

    def test_run_result_breakdown_covers_total(self, machine, cvm_session):
        result = machine.run(cvm_session, lambda ctx: ctx.compute(5000))
        assert sum(result["breakdown"].values()) == result["cycles"]
