"""Integration: a confidential guest running with its own stage-1 paging.

The compatibility claim of VM-based TEEs: the guest kernel's virtual
memory management works unmodified.  The guest builds Sv39 tables in its
own (secure) memory with ordinary stores; the translator then performs
real two-stage walks (VS-stage over G-stage) for every access.
"""

import pytest

from repro.errors import SecurityViolation
from repro.guest.paging import GuestPageTableBuilder
from repro.mem.physmem import PAGE_SIZE


@pytest.fixture
def paged_guest(machine):
    session = machine.launch_confidential_vm(image=b"paging-guest" * 100)
    return machine, session


def test_identity_plus_high_mapping(paged_guest):
    machine, session = paged_guest
    dram = session.layout.dram_base

    def workload(ctx):
        builder = GuestPageTableBuilder(ctx, table_region_gpa=dram + (64 << 20))
        data_gpa = dram + (32 << 20)
        ctx.store(data_gpa, 0xD47A)  # populate while still Bare
        # A kernel-style high virtual mapping onto that physical page,
        # plus identity mappings so the table region stays reachable.
        kva = 0x20_0000_0000  # within 39 bits
        builder.map(kva, data_gpa)
        for offset in range(0, 4 * PAGE_SIZE, PAGE_SIZE):
            builder.map(dram + (64 << 20) + offset, dram + (64 << 20) + offset)
        builder.map(data_gpa, data_gpa)
        builder.enable()
        value = ctx.load(kva)
        also = ctx.load(data_gpa)
        builder.disable()
        return value, also

    result = machine.run(session, workload)
    assert result["workload_result"] == (0xD47A, 0xD47A)


def test_unmapped_gva_faults_to_guest_not_host(paged_guest):
    """A VS-stage miss is the guest's own problem: CVM delegation sends it
    to VS mode, never to the hypervisor or the SM's exit path."""
    machine, session = paged_guest
    dram = session.layout.dram_base

    def workload(ctx):
        builder = GuestPageTableBuilder(ctx, table_region_gpa=dram + (64 << 20))
        for offset in range(0, 4 * PAGE_SIZE, PAGE_SIZE):
            builder.map(dram + (64 << 20) + offset, dram + (64 << 20) + offset)
        builder.enable()
        exits_before = session.cvm.exit_count
        try:
            ctx.load(0x30_0000_0000)  # never mapped
        except SecurityViolation as violation:
            # Our Bare-oriented guest kernel model cannot demand-page, so
            # the engine reports the would-be guest-internal fault; what
            # matters here is that no CVM exit happened for it.
            assert "VS-delegated" in str(violation)
        builder.disable()
        return session.cvm.exit_count - exits_before

    result = machine.run(session, workload)
    assert result["workload_result"] == 0


def test_write_protection_enforced_by_guest_tables(paged_guest):
    machine, session = paged_guest
    dram = session.layout.dram_base

    def workload(ctx):
        builder = GuestPageTableBuilder(ctx, table_region_gpa=dram + (64 << 20))
        ro_gpa = dram + (40 << 20)
        ctx.store(ro_gpa, 7)
        builder.map(0x10_0000_0000, ro_gpa, writable=False)
        for offset in range(0, 4 * PAGE_SIZE, PAGE_SIZE):
            builder.map(dram + (64 << 20) + offset, dram + (64 << 20) + offset)
        builder.enable()
        readable = ctx.load(0x10_0000_0000)
        try:
            ctx.store(0x10_0000_0000, 9)
            stored = True
        except SecurityViolation:
            stored = False  # guest-internal store page fault (VS-delegated)
        builder.disable()
        return readable, stored

    result = machine.run(session, workload)
    assert result["workload_result"] == (7, False)


def test_guest_tables_live_in_secure_memory(paged_guest):
    """The guest's own page tables are guest data: secure-pool frames."""
    machine, session = paged_guest
    dram = session.layout.dram_base
    table_region = dram + (64 << 20)

    def workload(ctx):
        builder = GuestPageTableBuilder(ctx, table_region_gpa=table_region)
        builder.map(0x10_0000_0000, dram + (40 << 20))
        return builder.root_gpa

    machine.run(session, workload)
    from repro.mem.pagetable import Sv39x4

    class Raw:
        def read_u64(self, addr):
            return machine.dram.read_u64(addr)

    result = Sv39x4().walk(Raw(), session.cvm.hgatp_root, table_region)
    assert machine.monitor.pool.contains(result.pa, PAGE_SIZE)
