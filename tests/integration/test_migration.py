"""CVM migration between machines (extension; see repro.sm.migration)."""

import pytest

from repro import Machine, MachineConfig, SecurityViolation
from repro.sm.migration import derive_migration_key

FLEET_SECRET = b"fleet-provisioning-secret"


@pytest.fixture
def key():
    return derive_migration_key(FLEET_SECRET, b"src-nonce-0001", b"dst-nonce-0001")


@pytest.fixture
def source_pair(key):
    machine = Machine(MachineConfig())
    session = machine.launch_confidential_vm(image=b"migratable-guest" * 200)
    return machine, session


class TestRoundTrip:
    def test_memory_and_registers_survive_migration(self, source_pair, key):
        source, session = source_pair
        base = session.layout.dram_base + (8 << 20)

        def prepare(ctx):
            ctx.write_bytes(base, b"state before migration")
            ctx.compute(10_000)

        source.run(session, prepare)
        measurement_before = session.cvm.measurement
        vcpu_pc = session.cvm.vcpu(0).pc
        blob = source.export_confidential_vm(session, key)

        destination = Machine(MachineConfig())
        migrated = destination.import_confidential_vm(blob, key)
        assert migrated.cvm.measurement == measurement_before
        assert migrated.cvm.vcpu(0).pc == vcpu_pc

        def verify(ctx):
            return ctx.read_bytes(base, 22)

        result = destination.run(migrated, verify)
        assert result["workload_result"] == b"state before migration"

    def test_source_instance_is_scrubbed(self, source_pair, key):
        source, session = source_pair
        base = session.layout.dram_base + (8 << 20)
        source.run(session, lambda ctx: ctx.write_bytes(base, b"SRC-SECRET" * 100))
        from repro.mem.pagetable import Sv39x4

        class Raw:
            def read_u64(self, addr):
                return source.dram.read_u64(addr)

        pa = Sv39x4().walk(Raw(), session.cvm.hgatp_root, base).pa
        source.export_confidential_vm(session, key)
        assert source.dram.read(pa, 10) == bytes(10)

    def test_migrated_cvm_attests_with_original_measurement(self, source_pair, key):
        source, session = source_pair
        source.run(session, lambda ctx: ctx.compute(100))
        original = session.cvm.measurement
        blob = source.export_confidential_vm(session, key)
        destination = Machine(MachineConfig())
        migrated = destination.import_confidential_vm(blob, key)

        report = destination.run(
            migrated, lambda ctx: ctx.attestation_report(b"post-migration")
        )["workload_result"]
        assert report.measurement == original
        assert destination.monitor.attestation.verify_report(report)

    def test_running_cvm_is_suspended_for_export(self, source_pair, key):
        source, session = source_pair
        source.run(session, lambda ctx: ctx.compute(100))
        blob = source.export_confidential_vm(session, key)  # no explicit suspend
        assert isinstance(blob, bytes)


class TestBlobSecurity:
    def test_blob_does_not_leak_plaintext(self, source_pair, key):
        source, session = source_pair
        secret = b"EXTREMELY-SECRET-DATABASE-ROW"
        base = session.layout.dram_base + (8 << 20)
        source.run(session, lambda ctx: ctx.write_bytes(base, secret * 50))
        blob = source.export_confidential_vm(session, key)
        assert secret not in blob

    def test_tampered_blob_rejected(self, source_pair, key):
        source, session = source_pair
        blob = bytearray(source.export_confidential_vm(session, key))
        blob[len(blob) // 2] ^= 0x01
        destination = Machine(MachineConfig())
        with pytest.raises(SecurityViolation):
            destination.import_confidential_vm(bytes(blob), key)

    def test_wrong_key_rejected(self, source_pair, key):
        source, session = source_pair
        blob = source.export_confidential_vm(session, key)
        wrong = derive_migration_key(FLEET_SECRET, b"src-nonce-0001", b"EVIL-nonce")
        destination = Machine(MachineConfig())
        with pytest.raises(SecurityViolation):
            destination.import_confidential_vm(blob, wrong)

    def test_truncated_blob_rejected(self, source_pair, key):
        source, session = source_pair
        blob = source.export_confidential_vm(session, key)
        destination = Machine(MachineConfig())
        with pytest.raises(SecurityViolation):
            destination.import_confidential_vm(blob[: len(blob) // 2], key)
        with pytest.raises(SecurityViolation):
            destination.import_confidential_vm(b"", key)

    def test_replay_to_two_destinations_both_work_but_differ(self, source_pair, key):
        """The blob is a snapshot: replay gives two independent instances
        (freshness/anti-replay would need a destination nonce in the key,
        which derive_migration_key supports)."""
        source, session = source_pair
        base = session.layout.dram_base + (8 << 20)
        source.run(session, lambda ctx: ctx.store(base, 42))
        blob = source.export_confidential_vm(session, key)
        first = Machine(MachineConfig()).import_confidential_vm(blob, key)
        second = Machine(MachineConfig()).import_confidential_vm(blob, key)
        assert first.cvm.measurement == second.cvm.measurement


class TestMigratedInMeasurementLog:
    """Pins the adopt path's measurement-log semantics.

    A migrated-in CVM keeps its *original launch measurement* -- that is
    its attestation identity, and relying parties must not see it change
    just because the fleet moved the CVM -- while the destination's local
    measurement log records the migration event (a ``migrated-in`` entry
    keyed by the blob's MAC tag) and is finalized by the adopt path's
    ``ecall_finalize`` without overwriting the measurement.
    """

    def test_adopt_keeps_original_measurement_despite_new_log(self, source_pair, key):
        source, session = source_pair
        source.run(session, lambda ctx: ctx.compute(100))
        original = session.cvm.measurement
        blob = source.export_confidential_vm(session, key)

        destination = Machine(MachineConfig())
        migrated = destination.import_confidential_vm(blob, key)
        # Identity preserved through the finalize the adopt path runs...
        assert migrated.cvm.measurement == original
        # ...even though the local log (which hashed "migrated-in", not
        # the original image/entry-point sequence) digests differently.
        assert migrated.cvm.measurement_log.digest is not None
        assert migrated.cvm.measurement_log.digest != original

    def test_local_log_contains_exactly_layout_and_migrated_in(self, source_pair, key):
        """The adopt log is layout + migrated-in(blob MAC), nothing else."""
        from repro.sm.attestation import MeasurementLog

        source, session = source_pair
        source.run(session, lambda ctx: ctx.compute(100))
        layout = session.cvm.layout
        blob = source.export_confidential_vm(session, key)

        destination = Machine(MachineConfig())
        migrated = destination.import_confidential_vm(blob, key)

        expected = MeasurementLog()
        expected.extend(
            "layout",
            repr((layout.dram_base, layout.dram_size, layout.shared_base)).encode(),
        )
        expected.extend("migrated-in", blob[-32:])
        assert migrated.cvm.measurement_log.digest == expected.finalize()

    def test_report_after_migration_signs_the_original_measurement(self, source_pair, key):
        source, session = source_pair
        source.run(session, lambda ctx: ctx.compute(100))
        original = session.cvm.measurement
        blob = source.export_confidential_vm(session, key)
        destination = Machine(MachineConfig())
        migrated = destination.import_confidential_vm(blob, key)
        report = destination.monitor.ecall_attestation_report(
            migrated.cvm.cvm_id, b"log-pin"
        )
        assert report.measurement == original
        assert destination.monitor.attestation.verify_report(report)


class TestKeyDerivation:
    def test_same_inputs_same_key(self):
        a = derive_migration_key(b"s", b"n1", b"n2")
        b = derive_migration_key(b"s", b"n1", b"n2")
        assert a == b

    def test_any_input_changes_key(self):
        base = derive_migration_key(b"s", b"n1", b"n2")
        assert derive_migration_key(b"x", b"n1", b"n2") != base
        assert derive_migration_key(b"s", b"nX", b"n2") != base
        assert derive_migration_key(b"s", b"n1", b"nX") != base
