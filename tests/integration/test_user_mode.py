"""Guest user-mode (VU) processes: the unmodified-application claim."""

import pytest

from repro.errors import ConfigurationError, SecurityViolation, TrapRaised
from repro.isa.privilege import PrivilegeMode


class TestUserProcesses:
    def test_process_runs_in_vu_and_returns(self, machine, cvm_session):
        def workload(ctx):
            modes = {}

            def app(ctx_):
                modes["inside"] = ctx_.session.hart.mode
                ctx_.compute(10_000)
                return "app-result"

            result = ctx.run_user_process(app)
            modes["after"] = ctx.session.hart.mode
            return result, modes

        result, modes = machine.run(cvm_session, workload)["workload_result"]
        assert result == "app-result"
        assert modes["inside"] is PrivilegeMode.VU
        assert modes["after"] is PrivilegeMode.VS

    def test_user_memory_access_translates_at_vu(self, machine, cvm_session):
        base = cvm_session.layout.dram_base + (8 << 20)

        def workload(ctx):
            def app(ctx_):
                ctx_.store(base, 0x11)
                return ctx_.load(base)

            return ctx.run_user_process(app)

        assert machine.run(cvm_session, workload)["workload_result"] == 0x11

    def test_syscalls_never_leave_the_cvm(self, machine, cvm_session):
        """100 syscalls: zero CVM exits beyond the run's own enter/halt."""

        def workload(ctx):
            def app(ctx_):
                for _ in range(100):
                    ctx_.syscall()

            exits_before = cvm_session.cvm.exit_count
            ctx.run_user_process(app)
            return cvm_session.cvm.exit_count - exits_before

        extra_exits = machine.run(cvm_session, workload)["workload_result"]
        assert extra_exits == 0

    def test_syscall_count_tracked(self, machine, cvm_session):
        def workload(ctx):
            ctx.run_user_process(lambda c: [c.syscall() for _ in range(7)])
            return ctx.syscall_count

        assert machine.run(cvm_session, workload)["workload_result"] == 7

    def test_syscall_requires_user_mode(self, machine, cvm_session):
        def workload(ctx):
            with pytest.raises(ConfigurationError):
                ctx.syscall()

        machine.run(cvm_session, workload)

    def test_process_start_requires_kernel_mode(self, machine, cvm_session):
        def workload(ctx):
            def app(ctx_):
                with pytest.raises(ConfigurationError):
                    ctx_.run_user_process(lambda c: None)

            ctx.run_user_process(app)

        machine.run(cvm_session, workload)

    def test_broken_delegation_detected(self, machine, cvm_session):
        """If ECALL-from-U were not VS-delegated, the syscall refuses
        rather than silently leaking to a higher privilege."""

        def workload(ctx):
            def app(ctx_):
                ctx_.session.hart.hedeleg = frozenset()  # sabotage
                with pytest.raises(SecurityViolation):
                    ctx_.syscall()

            ctx.run_user_process(app)

        machine.run(cvm_session, workload)

    def test_vu_csr_access_denied(self, machine, cvm_session):
        def workload(ctx):
            def app(ctx_):
                with pytest.raises(TrapRaised):
                    ctx_.session.hart.csrs.read("sepc", PrivilegeMode.VU)

            ctx.run_user_process(app)

        machine.run(cvm_session, workload)

    def test_works_in_normal_vms_too(self, machine, normal_session):
        def workload(ctx):
            def app(ctx_):
                ctx_.syscall()
                return 42

            return ctx.run_user_process(app)

        assert machine.run(normal_session, workload)["workload_result"] == 42

    def test_process_exception_restores_kernel_mode(self, machine, cvm_session):
        def workload(ctx):
            class AppCrash(Exception):
                pass

            def app(ctx_):
                raise AppCrash()

            with pytest.raises(AppCrash):
                ctx.run_user_process(app)
            return ctx.session.hart.mode

        mode = machine.run(cvm_session, workload)["workload_result"]
        assert mode is PrivilegeMode.VS
