"""Integration: host misbehaviour injected mid-flow.

Beyond targeted attacks (tests/security), these scenarios check that the
stack degrades safely when the untrusted side behaves *badly* rather
than maliciously: lying host-work pollers, devices that drop work,
expansion that keeps being needed, hostile device backends.
"""

import pytest

from repro import Machine, MachineConfig, SecurityViolation
from repro.mem.physmem import PAGE_SIZE
from repro.sm.alloc import AllocStage
from repro.workloads.memstress import sequential_write_stress


class TestHostWorkMisbehaviour:
    def test_lying_host_work_does_not_wedge_wfi(self, machine):
        """host_work claims progress but never delivers; the guest's own
        retry logic (not the SM) must bound the loop."""
        session = machine.launch_confidential_vm(image=b"x")
        machine.attach_virtio_net(session)
        session.host_work = lambda machine_, session_: True  # lies

        def workload(ctx):
            driver = ctx.net_driver()
            driver.post_rx_buffers(2)
            for _ in range(5):
                ctx.wfi()
                ctx.deliver_pending_irqs()
                if driver.recv() is not None:
                    return "got frame"
            return "gave up"

        assert machine.run(session, workload)["workload_result"] == "gave up"

    def test_absent_host_work_wfi_returns_false(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        result = machine.run(session, lambda ctx: ctx.wfi())
        assert result["workload_result"] is False


class TestRepeatedExpansion:
    def test_many_expansions_preserve_all_data(self):
        """A tiny pool + large working set: multiple stage-3 rounds, and
        every page the guest wrote stays intact and correctly owned."""
        machine = Machine(MachineConfig(initial_pool_bytes=1 << 20))
        machine.hypervisor.expand_chunk = 2 << 20
        session = machine.launch_confidential_vm(image=b"x")
        pages = 1500  # ~6 MB: needs several 2 MB expansions

        machine.run(session, sequential_write_stress(pages))
        assert machine.hypervisor.pool_expansions >= 2
        assert machine.monitor.fault_stage_counts[AllocStage.POOL_EXPANSION] >= 2

        base = session.layout.dram_base + (16 << 20)

        def verify(ctx):
            for i in range(0, pages, 97):
                if ctx.load(base + i * PAGE_SIZE) != i:
                    return i
            return -1

        assert machine.run(session, verify)["workload_result"] == -1

    def test_expansion_regions_all_pmp_covered(self):
        machine = Machine(MachineConfig(initial_pool_bytes=1 << 20))
        machine.hypervisor.expand_chunk = 2 << 20
        session = machine.launch_confidential_vm(image=b"x")
        machine.run(session, sequential_write_stress(1200))
        from repro.isa.privilege import PrivilegeMode
        from repro.isa.traps import AccessType

        machine.hart.mode = PrivilegeMode.HS
        for base, size in machine.monitor.pool.regions:
            assert not machine.hart.pmp.check(base, 8, AccessType.LOAD, PrivilegeMode.HS)
            assert not machine.iopmp.check(0, base + size - 8, 8, AccessType.STORE)


class TestHostileDeviceBackend:
    def test_net_handler_raising_is_contained_to_host(self, machine):
        """A crashing QEMU device model must not corrupt the CVM: the
        error surfaces to the embedder, and the guest state it left
        behind is still resumable."""
        session = machine.launch_confidential_vm(image=b"x")
        net = machine.attach_virtio_net(session)

        def exploding(frame, header):
            raise RuntimeError("device model crashed")

        net.host_handler = exploding

        def workload(ctx):
            driver = ctx.net_driver()
            driver.post_rx_buffers(1)
            driver.send(b"boom")

        with pytest.raises(RuntimeError, match="device model crashed"):
            machine.run(session, workload)
        # The CVM can still be entered and run afterwards.
        net.host_handler = lambda frame, header: []
        result = machine.run(session, lambda ctx: ctx.compute(1000))
        assert result["cycles"] > 0

    def test_mmio_load_from_unclaimed_address_returns_zero(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        result = machine.run(session, lambda ctx: ctx.mmio_read(0x1200_0000))
        assert result["workload_result"] == 0


class TestGuestMisbehaviour:
    def test_guest_access_outside_all_regions_is_fatal(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        with pytest.raises(SecurityViolation):
            machine.run(session, lambda ctx: ctx.load(0x7000_0000))

    def test_failed_run_leaves_session_recoverable(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        with pytest.raises(SecurityViolation):
            machine.run(session, lambda ctx: ctx.load(0x7000_0000))
        assert not session.active
        result = machine.run(session, lambda ctx: ctx.compute(500))
        assert result["cycles"] > 0
