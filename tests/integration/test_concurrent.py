"""Integration: concurrent multi-VM execution via the scheduler."""

import pytest

from repro import Machine, MachineConfig
from repro.hyp.scheduler import RoundRobinScheduler


class TestScheduler:
    def test_rotation(self):
        scheduler = RoundRobinScheduler()
        for item in ("a", "b", "c"):
            scheduler.add(item)
        assert [scheduler.next() for _ in range(5)] == ["a", "b", "c", "a", "b"]

    def test_remove_mid_rotation(self):
        scheduler = RoundRobinScheduler()
        for item in ("a", "b", "c"):
            scheduler.add(item)
        scheduler.next()
        scheduler.remove("b")
        assert len(scheduler) == 2
        assert [scheduler.next() for _ in range(2)] == ["b" if False else "c", "a"]

    def test_empty(self):
        assert RoundRobinScheduler().next() is None


class TestRunConcurrent:
    def test_interleaved_cvms_complete_with_correct_results(self, machine):
        sessions = [
            machine.launch_confidential_vm(image=f"tenant{i}".encode() * 100)
            for i in range(3)
        ]

        def make_workload(tag, session):
            def workload(ctx):
                base = session.layout.dram_base + (8 << 20)
                total = 0
                for step in range(4):
                    ctx.store(base + 8 * step, tag * 10 + step)
                    ctx.compute(10_000)
                    yield
                for step in range(4):
                    total += ctx.load(base + 8 * step)
                return total

            return workload

        pairs = [(s, make_workload(i, s)) for i, s in enumerate(sessions)]
        results = machine.run_concurrent(pairs)
        for i, session in enumerate(sessions):
            expected = sum(i * 10 + step for step in range(4))
            assert results[session] == expected

    def test_mixed_normal_and_confidential(self, machine):
        cvm = machine.launch_confidential_vm(image=b"c" * 4096)
        normal = machine.launch_normal_vm()

        def cvm_workload(ctx):
            ctx.store(cvm.layout.dram_base + (4 << 20), 1)
            yield
            ctx.compute(5_000)
            return "cvm-done"

        def normal_workload(ctx):
            ctx.store(normal.layout.dram_base + (4 << 20), 2)
            yield
            ctx.compute(5_000)
            return "normal-done"

        results = machine.run_concurrent(
            [(cvm, cvm_workload), (normal, normal_workload)]
        )
        assert results[cvm] == "cvm-done"
        assert results[normal] == "normal-done"

    def test_every_rotation_is_a_world_switch(self, machine):
        session = machine.launch_confidential_vm(image=b"x")

        def workload(ctx):
            for _ in range(5):
                ctx.compute(1_000)
                yield

        entries_before = session.cvm.entry_count
        machine.run_concurrent([(session, workload)])
        # 6 slices (5 yields + final) -> 6 entries.
        assert session.cvm.entry_count - entries_before == 6

    def test_isolation_maintained_under_interleaving(self, machine):
        """Interleaved tenants writing the same GPA never see each other."""
        a = machine.launch_confidential_vm(image=b"a" * 4096)
        b = machine.launch_confidential_vm(image=b"b" * 4096)
        gpa = a.layout.dram_base + (8 << 20)

        def writer(value, count):
            def workload(ctx):
                for step in range(count):
                    ctx.store(gpa, value + step)
                    yield
                return ctx.load(gpa)

            return workload

        results = machine.run_concurrent([(a, writer(1000, 4)), (b, writer(2000, 4))])
        assert results[a] == 1003
        assert results[b] == 2003

    def test_uneven_lengths(self, machine):
        short = machine.launch_confidential_vm(image=b"s" * 512)
        long = machine.launch_confidential_vm(image=b"l" * 512)

        def make(n):
            def workload(ctx):
                for _ in range(n):
                    ctx.compute(100)
                    yield
                return n

            return workload

        results = machine.run_concurrent([(short, make(1)), (long, make(7))])
        assert results[short] == 1
        assert results[long] == 7
