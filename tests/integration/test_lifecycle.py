"""Integration: full CVM lifecycles across the whole stack."""

import pytest

from repro import Machine, MachineConfig
from repro.sm.cvm import CvmState


class TestFullLifecycle:
    def test_create_run_suspend_resume_run_destroy(self, machine):
        session = machine.launch_confidential_vm(image=b"lifecycle" * 100)
        base = session.layout.dram_base + (8 << 20)

        def phase_one(ctx):
            ctx.write_bytes(base, b"persistent-state")
            ctx.compute(50_000)

        machine.run(session, phase_one)
        machine.monitor.ecall_suspend(session.cvm.cvm_id)
        assert session.cvm.state is CvmState.SUSPENDED
        machine.monitor.ecall_resume(session.cvm.cvm_id)

        def phase_two(ctx):
            return ctx.read_bytes(base, 16)

        result = machine.run(session, phase_two)
        assert result["workload_result"] == b"persistent-state"
        machine.monitor.ecall_destroy(session.cvm.cvm_id)
        assert session.cvm.state is CvmState.DESTROYED

    def test_suspended_cvm_cannot_run(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        machine.monitor.ecall_suspend(session.cvm.cvm_id)
        with pytest.raises(ValueError):
            machine.run(session, lambda ctx: ctx.compute(10))

    def test_destroyed_cvm_cannot_run(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        machine.monitor.ecall_destroy(session.cvm.cvm_id)
        with pytest.raises(ValueError):
            machine.run(session, lambda ctx: ctx.compute(10))

    def test_vcpu_register_state_survives_suspend_resume(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        vcpu = session.cvm.vcpu(0)
        machine.run(session, lambda ctx: ctx.compute(100))
        saved_pc = vcpu.pc
        saved_csrs = dict(vcpu.csrs)
        machine.monitor.ecall_suspend(session.cvm.cvm_id)
        machine.monitor.ecall_resume(session.cvm.cvm_id)
        assert vcpu.pc == saved_pc
        assert vcpu.csrs == saved_csrs


class TestSequentialTenants:
    def test_pool_recycling_across_generations(self):
        """Launch/destroy cycles must not leak pool memory."""
        machine = Machine(MachineConfig(initial_pool_bytes=16 << 20))
        baseline = None
        for generation in range(5):
            session = machine.launch_confidential_vm(image=b"gen" * 2000)
            machine.run(session, lambda ctx: ctx.compute(10_000))
            machine.monitor.ecall_destroy(session.cvm.cvm_id)
            free = machine.monitor.pool.free_blocks
            if baseline is None:
                baseline = free
            else:
                # SM metadata (roots) accumulates block-at-a-time at worst;
                # data blocks must fully recycle.
                assert free >= baseline - generation

    def test_recycled_frames_are_clean_for_next_tenant(self, machine):
        first = machine.launch_confidential_vm(image=b"FIRST-TENANT-SECRET" * 100)
        machine.run(first, lambda ctx: ctx.compute(1000))
        machine.monitor.ecall_destroy(first.cvm.cvm_id)
        second = machine.launch_confidential_vm(image=b"\x00" * 4096)

        def snoop(ctx):
            # Sweep the second tenant's memory looking for the first's data.
            base = second.layout.dram_base
            return ctx.read_bytes(base, 64 << 10)

        data = machine.run(second, snoop)["workload_result"]
        assert b"FIRST-TENANT" not in data


class TestMixedFleet:
    def test_normal_and_confidential_alternating(self, machine):
        cvm = machine.launch_confidential_vm(image=b"c" * 4096)
        normal = machine.launch_normal_vm()
        c_base = cvm.layout.dram_base + (4 << 20)
        n_base = normal.layout.dram_base + (4 << 20)
        for round_ in range(3):
            machine.run(cvm, lambda ctx, r=round_: ctx.store(c_base + 8 * r, 100 + r))
            machine.run(normal, lambda ctx, r=round_: ctx.store(n_base + 8 * r, 200 + r))
        checks = machine.run(cvm, lambda ctx: [ctx.load(c_base + 8 * r) for r in range(3)])
        assert checks["workload_result"] == [100, 101, 102]
        checks = machine.run(normal, lambda ctx: [ctx.load(n_base + 8 * r) for r in range(3)])
        assert checks["workload_result"] == [200, 201, 202]

    def test_two_cvms_share_pool_but_not_frames(self, machine):
        a = machine.launch_confidential_vm(image=b"a" * 4096)
        b = machine.launch_confidential_vm(image=b"b" * 4096)
        base_a = a.layout.dram_base + (2 << 20)
        base_b = b.layout.dram_base + (2 << 20)
        machine.run(a, lambda ctx: ctx.write_bytes(base_a, b"belongs to A"))
        machine.run(b, lambda ctx: ctx.write_bytes(base_b, b"belongs to B"))
        # Same GPA, different CVM, different frame, different data.
        got_a = machine.run(a, lambda ctx: ctx.read_bytes(base_a, 12))
        got_b = machine.run(b, lambda ctx: ctx.read_bytes(base_b, 12))
        assert got_a["workload_result"] == b"belongs to A"
        assert got_b["workload_result"] == b"belongs to B"

    def test_many_cvms_fixed_pmp_budget(self):
        machine = Machine(MachineConfig(initial_pool_bytes=32 << 20))
        entries_before = machine.pmp_controller.pmp_entries_used
        for _ in range(20):
            machine.launch_confidential_vm(image=b"t" * 512, shared_window=1 << 20)
        # CVM count does not consume PMP entries (only pool regions do).
        assert (
            machine.pmp_controller.pmp_entries_used
            <= entries_before + len(machine.monitor.pool.regions)
        )


class TestMultiVcpu:
    def test_vcpus_have_independent_caches_and_state(self, machine):
        session = machine.launch_confidential_vm(image=b"smp" * 400, vcpu_count=2)
        base = session.layout.dram_base + (8 << 20)

        session.vcpu_id = 0
        machine.run(session, lambda ctx: ctx.store(base, 111))
        session.vcpu_id = 1
        machine.run(session, lambda ctx: ctx.store(base + 8, 222))

        allocator = machine.monitor._allocators[session.cvm.cvm_id]
        cache0 = allocator.cache_for(0)
        cache1 = allocator.cache_for(1)
        assert cache0.block is not cache1.block
        # Both vCPUs see the same guest-physical memory.
        session.vcpu_id = 0
        result = machine.run(session, lambda ctx: (ctx.load(base), ctx.load(base + 8)))
        assert result["workload_result"] == (111, 222)
