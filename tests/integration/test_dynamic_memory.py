"""Integration: dynamic shared-memory growth and page reclamation."""

import pytest

from repro.errors import EcallError, SecurityViolation
from repro.mem.physmem import PAGE_SIZE
from repro.sm.alloc import AllocStage


class TestShareRequest:
    def test_guest_grows_shared_window(self, machine):
        session = machine.launch_confidential_vm(image=b"x", shared_window=1 << 20)
        handle = session.handle
        size_before = handle.shared_window_size

        def workload(ctx):
            new_gpa = ctx.request_shared_memory(512 * 1024)
            # The new range is immediately usable for guest I/O staging.
            ctx.store(new_gpa, 0xABCD)
            return new_gpa, ctx.load(new_gpa)

        result = machine.run(session, workload)
        new_gpa, value = result["workload_result"]
        assert value == 0xABCD
        assert new_gpa == session.layout.shared_base + size_before
        assert handle.shared_window_size == size_before + 512 * 1024

    def test_new_range_is_device_reachable(self, machine):
        """DMA translation covers the grown window (non-contiguous backing)."""
        session = machine.launch_confidential_vm(image=b"x", shared_window=1 << 20)
        # Fragment the host allocator so the extension is non-adjacent.
        machine.host_allocator.alloc()

        def workload(ctx):
            return ctx.request_shared_memory(256 * 1024)

        new_gpa = machine.run(session, workload)["workload_result"]
        hpa = machine.hypervisor.shared_gpa_to_hpa(session.handle, new_gpa)
        assert hpa != 0
        machine.bus.dram.write(hpa, b"dma-ok")
        # The guest sees the same bytes through its stage-2 view.
        result = machine.run(session, lambda ctx: ctx.read_bytes(new_gpa, 6))
        assert result["workload_result"] == b"dma-ok"

    def test_share_request_is_a_world_switch(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        exits_before = session.cvm.exit_count

        def workload(ctx):
            ctx.request_shared_memory(64 * 1024)

        machine.run(session, workload)
        assert session.cvm.exit_count - exits_before >= 2  # request + halt

    def test_request_bounded_by_shared_region(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        too_much = session.layout.shared_size

        def workload(ctx):
            with pytest.raises(EcallError):
                ctx.request_shared_memory(too_much)

        machine.run(session, workload)

    def test_unaligned_request_rejected(self, machine):
        session = machine.launch_confidential_vm(image=b"x")

        def workload(ctx):
            with pytest.raises(EcallError):
                ctx.request_shared_memory(100)

        machine.run(session, workload)


class TestReclaim:
    def test_reclaimed_pages_are_scrubbed_and_reused(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        base = session.layout.dram_base + (8 << 20)

        def workload(ctx):
            ctx.write_bytes(base, b"ephemeral" * 500)  # faults ~2 pages
            freed = ctx.reclaim_pages(base, 2)
            # The GPAs fault again on next touch -- and read back zeroed.
            data = ctx.read_bytes(base, 16)
            return freed, data

        freed, data = machine.run(session, workload)["workload_result"]
        assert freed == 2
        assert data == bytes(16)

    def test_reclaim_feeds_the_page_cache(self, machine):
        """Freed pages come back at stage-1 cost."""
        session = machine.launch_confidential_vm(image=b"x")
        base = session.layout.dram_base + (8 << 20)
        stages = []
        machine.fault_observer = lambda kind, stage, cycles: stages.append(stage)

        def workload(ctx):
            for i in range(4):
                ctx.store(base + i * PAGE_SIZE, i)
            ctx.reclaim_pages(base, 4)
            stages.clear()
            for i in range(4):
                ctx.store(base + i * PAGE_SIZE, i)

        machine.run(session, workload)
        assert stages == [AllocStage.PAGE_CACHE] * 4

    def test_reclaim_outside_private_region_refused(self, machine):
        session = machine.launch_confidential_vm(image=b"x")

        def workload(ctx):
            with pytest.raises(SecurityViolation):
                ctx.reclaim_pages(session.layout.shared_base, 1)

        machine.run(session, workload)

    def test_reclaim_of_unmapped_pages_is_noop(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        base = session.layout.dram_base + (64 << 20)

        def workload(ctx):
            return ctx.reclaim_pages(base, 3)

        assert machine.run(session, workload)["workload_result"] == 0
