"""The register-level ECALL ABI (repro.sm.abi)."""

import pytest

from repro.isa.privilege import PrivilegeMode
from repro.sm.abi import (
    EXT_ZION_GUEST,
    EXT_ZION_HOST,
    GuestFunction,
    HostFunction,
    SbiError,
)


@pytest.fixture
def iface(machine):
    return machine.ecall_interface


def _host_call(machine, fid, *args):
    machine.hart.mode = PrivilegeMode.HS
    return machine.ecall_interface.call(machine.hart, EXT_ZION_HOST, int(fid), list(args) + [0] * (6 - len(args)))


class TestHostAbi:
    def test_create_cvm_returns_id(self, machine):
        error, cvm_id = _host_call(machine, HostFunction.CREATE_CVM, 1)
        assert error == SbiError.SUCCESS
        assert cvm_id in machine.monitor.cvms

    def test_full_lifecycle_through_registers(self, machine):
        error, cvm_id = _host_call(machine, HostFunction.CREATE_CVM, 1)
        page = machine.host_allocator.alloc()
        assert _host_call(machine, HostFunction.ASSIGN_SHARED_VCPU, cvm_id, 0, page)[0] == 0
        # Stage an image page in normal memory and load it by address.
        src = machine.host_allocator.alloc()
        machine.dram.write(src, b"ABI-LOADED-IMAGE" + bytes(4096 - 16))
        dram_base = machine.monitor.cvms[cvm_id].layout.dram_base
        assert _host_call(machine, HostFunction.LOAD_IMAGE_PAGE, cvm_id, dram_base, src)[0] == 0
        assert _host_call(machine, HostFunction.SET_ENTRY_POINT, cvm_id, 0, dram_base)[0] == 0
        assert _host_call(machine, HostFunction.FINALIZE, cvm_id)[0] == 0
        assert machine.monitor.cvms[cvm_id].measurement is not None
        assert _host_call(machine, HostFunction.SUSPEND, cvm_id)[0] == 0
        assert _host_call(machine, HostFunction.RESUME, cvm_id)[0] == 0
        assert _host_call(machine, HostFunction.DESTROY, cvm_id)[0] == 0

    def test_host_calls_denied_from_guest_mode(self, machine):
        machine.hart.mode = PrivilegeMode.VS
        error, _ = machine.ecall_interface.call(
            machine.hart, EXT_ZION_HOST, int(HostFunction.CREATE_CVM), [1, 0, 0, 0, 0, 0]
        )
        assert error == SbiError.DENIED

    def test_unknown_extension(self, machine):
        machine.hart.mode = PrivilegeMode.HS
        error, _ = machine.ecall_interface.call(machine.hart, 0x999, 0, [0] * 6)
        assert error == SbiError.NOT_SUPPORTED

    def test_unknown_function(self, machine):
        error, _ = _host_call(machine, 99)
        assert error == SbiError.NOT_SUPPORTED

    def test_invalid_params_surface_as_error_code(self, machine):
        error, _ = _host_call(machine, HostFunction.FINALIZE, 424242)
        assert error == SbiError.INVALID_PARAM

    def test_security_violations_surface_as_denied(self, machine):
        error, cvm_id = _host_call(machine, HostFunction.CREATE_CVM, 1)
        pool_page = machine.monitor.pool.regions[0][0]
        error, _ = _host_call(
            machine, HostFunction.ASSIGN_SHARED_VCPU, cvm_id, 0, pool_page
        )
        assert error == SbiError.DENIED

    def test_host_cannot_feed_sm_secure_bytes(self, machine):
        """LOAD_IMAGE_PAGE reads the source through the host's PMP view."""
        error, cvm_id = _host_call(machine, HostFunction.CREATE_CVM, 1)
        page = machine.host_allocator.alloc()
        _host_call(machine, HostFunction.ASSIGN_SHARED_VCPU, cvm_id, 0, page)
        pool_page = machine.monitor.pool.regions[0][0]
        dram_base = machine.monitor.cvms[cvm_id].layout.dram_base
        from repro.errors import TrapRaised

        with pytest.raises(TrapRaised):
            _host_call(machine, HostFunction.LOAD_IMAGE_PAGE, cvm_id, dram_base, pool_page)


class TestGuestAbi:
    def test_get_measurement_into_guest_buffer(self, machine):
        session = machine.launch_confidential_vm(image=b"abi-guest" * 100)
        buf = session.layout.dram_base + 0x5000

        def workload(ctx):
            ctx.touch(buf)  # fault the buffer in first
            error, length = ctx.sbi_ecall(
                EXT_ZION_GUEST, int(GuestFunction.GET_MEASUREMENT), buf
            )
            return error, length, ctx.read_bytes(buf, 32)

        error, length, measurement = machine.run(session, workload)["workload_result"]
        assert error == SbiError.SUCCESS
        assert length == 32
        assert measurement == session.cvm.measurement

    def test_get_random_via_registers(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        buf = session.layout.dram_base + 0x6000

        def workload(ctx):
            ctx.touch(buf)
            error, count = ctx.sbi_ecall(
                EXT_ZION_GUEST, int(GuestFunction.GET_RANDOM), buf, 16
            )
            return error, ctx.read_bytes(buf, 16)

        error, random = machine.run(session, workload)["workload_result"]
        assert error == SbiError.SUCCESS
        assert random != bytes(16)

    def test_attestation_report_via_registers(self, machine):
        session = machine.launch_confidential_vm(image=b"measured" * 10)
        data_buf = session.layout.dram_base + 0x7000
        out_buf = session.layout.dram_base + 0x8000

        def workload(ctx):
            ctx.write_bytes(data_buf, b"nonce-64")
            ctx.touch(out_buf)
            error, length = ctx.sbi_ecall(
                EXT_ZION_GUEST, int(GuestFunction.GET_ATTESTATION_REPORT),
                data_buf, 8, out_buf,
            )
            return error, length, ctx.read_bytes(out_buf, 32)

        error, length, prefix = machine.run(session, workload)["workload_result"]
        assert error == SbiError.SUCCESS
        assert length == 32 + 16 + 32  # measurement + nonce + signature
        assert prefix == session.cvm.measurement

    def test_reclaim_via_registers(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        target = session.layout.dram_base + (8 << 20)

        def workload(ctx):
            ctx.store(target, 1)
            return ctx.sbi_ecall(
                EXT_ZION_GUEST, int(GuestFunction.RECLAIM_PAGES), target, 1
            )

        error, freed = machine.run(session, workload)["workload_result"]
        assert error == SbiError.SUCCESS
        assert freed == 1

    def test_guest_calls_denied_from_host_mode(self, machine):
        machine.hart.mode = PrivilegeMode.HS
        error, _ = machine.ecall_interface.call(
            machine.hart, EXT_ZION_GUEST, int(GuestFunction.GET_RANDOM), [0] * 6
        )
        assert error == SbiError.DENIED

    def test_unmapped_guest_buffer_rejected(self, machine):
        session = machine.launch_confidential_vm(image=b"x")

        def workload(ctx):
            return ctx.sbi_ecall(
                EXT_ZION_GUEST, int(GuestFunction.GET_RANDOM),
                session.layout.dram_base + (100 << 20), 16,
            )

        error, _ = machine.run(session, workload)["workload_result"]
        assert error == SbiError.INVALID_PARAM

    def test_cross_page_buffer_rejected(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        buf = session.layout.dram_base + 0x5FF8  # 8 bytes before a boundary

        def workload(ctx):
            ctx.touch(buf)
            ctx.touch(buf + 0x1000)
            return ctx.sbi_ecall(
                EXT_ZION_GUEST, int(GuestFunction.GET_RANDOM), buf, 32
            )

        error, _ = machine.run(session, workload)["workload_result"]
        assert error == SbiError.INVALID_PARAM


class TestAbiErrorPaths:
    """Hostile register values must come back as error codes, not tracebacks
    (the SM's dispatch surface is reachable by both adversaries)."""

    def test_unknown_extension_from_guest_mode(self, machine):
        session = machine.launch_confidential_vm(image=b"x")

        def workload(ctx):
            return ctx.sbi_ecall(0xDEAD_BEEF, 0)

        error, _ = machine.run(session, workload)["workload_result"]
        assert error == SbiError.NOT_SUPPORTED

    def test_unknown_guest_function(self, machine):
        session = machine.launch_confidential_vm(image=b"x")

        def workload(ctx):
            return ctx.sbi_ecall(EXT_ZION_GUEST, 99)

        error, _ = machine.run(session, workload)["workload_result"]
        assert error == SbiError.NOT_SUPPORTED

    def test_every_host_function_denied_from_guest_mode(self, machine):
        machine.launch_confidential_vm(image=b"x")
        machine.hart.mode = PrivilegeMode.VS
        for fid in HostFunction:
            error, _ = machine.ecall_interface.call(
                machine.hart, EXT_ZION_HOST, int(fid), [0] * 6
            )
            assert error == SbiError.DENIED, fid

    def test_every_guest_function_denied_from_host_mode(self, machine):
        machine.hart.mode = PrivilegeMode.HS
        for fid in GuestFunction:
            error, _ = machine.ecall_interface.call(
                machine.hart, EXT_ZION_GUEST, int(fid), [0] * 6
            )
            assert error == SbiError.DENIED, fid

    def test_misaligned_buffer_address_rejected(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        buf = session.layout.dram_base + 0x5004  # 4-byte aligned only

        def workload(ctx):
            ctx.touch(buf)
            return ctx.sbi_ecall(
                EXT_ZION_GUEST, int(GuestFunction.GET_RANDOM), buf, 16
            )

        error, _ = machine.run(session, workload)["workload_result"]
        assert error == SbiError.INVALID_PARAM

    def test_negative_buffer_length_rejected(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        buf = session.layout.dram_base + 0x5000

        def workload(ctx):
            ctx.touch(buf)
            return ctx.sbi_ecall(
                EXT_ZION_GUEST, int(GuestFunction.GET_RANDOM), buf, -8
            )

        error, _ = machine.run(session, workload)["workload_result"]
        assert error == SbiError.INVALID_PARAM

    def test_misaligned_channel_measurement_buffer_rejected(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        window = session.layout.dram_base + 0x200_0000
        meas = session.layout.dram_base + 0x5001  # unaligned scratch

        def workload(ctx):
            ctx.touch(meas & ~0xFFF)
            return ctx.sbi_ecall(
                EXT_ZION_GUEST, int(GuestFunction.CHANNEL_CREATE),
                window, 4 * 4096, meas,
            )

        error, _ = machine.run(session, workload)["workload_result"]
        assert error == SbiError.INVALID_PARAM

    def test_garbage_channel_ids_never_raise(self, machine):
        session = machine.launch_confidential_vm(image=b"x")

        def workload(ctx):
            results = []
            for fid in (GuestFunction.CHANNEL_NOTIFY, GuestFunction.CHANNEL_CLOSE):
                for channel_id in (-1, 0, 2**63):
                    error, _ = ctx.sbi_ecall(EXT_ZION_GUEST, int(fid), channel_id)
                    results.append(error)
            return results

        results = machine.run(session, workload)["workload_result"]
        assert all(
            error in (SbiError.INVALID_PARAM, SbiError.DENIED) for error in results
        )


class TestDescribeCvm:
    """DESCRIBE_CVM: the sanctioned host view of a CVM's shape."""

    def test_describe_returns_vcpu_count_in_registers(self, machine):
        _, cvm_id = _host_call(machine, HostFunction.CREATE_CVM, 2)
        error, count = _host_call(machine, HostFunction.DESCRIBE_CVM, cvm_id)
        assert error == SbiError.SUCCESS
        assert count == 2

    def test_describe_unknown_cvm_is_invalid_param(self, machine):
        error, _ = _host_call(machine, HostFunction.DESCRIBE_CVM, 999)
        assert error == SbiError.INVALID_PARAM

    def test_descriptor_exposes_shape_not_secrets(self, machine):
        _, cvm_id = _host_call(machine, HostFunction.CREATE_CVM, 1)
        descriptor = machine.monitor.ecall_describe_cvm(cvm_id)
        cvm = machine.monitor.cvms[cvm_id]
        assert descriptor.cvm_id == cvm_id
        assert descriptor.layout == cvm.layout
        assert descriptor.state == "created"
        # No table roots, secure vCPU state, or pool geometry leak out.
        assert not hasattr(descriptor, "hgatp_root")
        assert not hasattr(descriptor, "vcpus")


class TestRegisterArgumentValidation:
    """Check-after-Load on register-supplied ids and lengths."""

    def test_assign_shared_vcpu_rejects_out_of_range_id(self, machine):
        _, cvm_id = _host_call(machine, HostFunction.CREATE_CVM, 1)
        page = machine.host_allocator.alloc()
        error, _ = _host_call(
            machine, HostFunction.ASSIGN_SHARED_VCPU, cvm_id, 7, page
        )
        assert error == SbiError.INVALID_PARAM

    def test_assign_shared_vcpu_rejects_negative_id(self, machine):
        # Pre-fix, -1 silently wrapped to shared_vcpus[-1].
        _, cvm_id = _host_call(machine, HostFunction.CREATE_CVM, 1)
        page = machine.host_allocator.alloc()
        error, _ = _host_call(
            machine, HostFunction.ASSIGN_SHARED_VCPU, cvm_id, -1, page
        )
        assert error == SbiError.INVALID_PARAM

    def test_set_entry_point_rejects_bad_vcpu_id(self, machine):
        # Pre-fix this raised IndexError straight through the ABI.
        _, cvm_id = _host_call(machine, HostFunction.CREATE_CVM, 1)
        error, _ = _host_call(
            machine, HostFunction.SET_ENTRY_POINT, cvm_id, 5, 0x8000_0000
        )
        assert error == SbiError.INVALID_PARAM

    def test_reclaim_count_is_bounded(self, machine):
        import pytest

        from repro.errors import EcallError

        session = machine.launch_confidential_vm(image=b"x")
        with pytest.raises(EcallError):
            machine.monitor.ecall_reclaim_pages(
                session.cvm.cvm_id, 0, session.layout.dram_base, 1 << 40
            )
