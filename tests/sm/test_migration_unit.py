"""Migration module internals: keystream, framing, key derivation."""

import pytest

from repro.sm.migration import _keystream, _mac, _xor, derive_migration_key


class TestKeystream:
    def test_deterministic(self):
        assert _keystream(b"k" * 32, 100) == _keystream(b"k" * 32, 100)

    def test_prefix_property(self):
        """Longer streams extend shorter ones (CTR construction)."""
        short = _keystream(b"k" * 32, 40)
        long = _keystream(b"k" * 32, 200)
        assert long[:40] == short

    def test_key_separation(self):
        assert _keystream(b"a" * 32, 64) != _keystream(b"b" * 32, 64)

    def test_xor_is_involutive(self):
        stream = _keystream(b"k" * 32, 32)
        data = bytes(range(32))
        assert _xor(_xor(data, stream), stream) == data


class TestMac:
    def test_deterministic_and_key_bound(self):
        assert _mac(b"k", b"data") == _mac(b"k", b"data")
        assert _mac(b"k", b"data") != _mac(b"K", b"data")
        assert _mac(b"k", b"data") != _mac(b"k", b"datb")

    def test_mac_key_differs_from_enc_key(self):
        """Encrypt and MAC must not share a key (domain separation)."""
        key = b"k" * 32
        assert _keystream(key, 32) != _mac(key, b"")


class TestKeyDerivation:
    def test_output_is_256_bit(self):
        assert len(derive_migration_key(b"s", b"a", b"b")) == 32

    def test_nonce_order_matters(self):
        assert derive_migration_key(b"s", b"a", b"b") != derive_migration_key(
            b"s", b"b", b"a"
        )
