"""The SM's PMP layout and world-switch pool toggling."""

import pytest

from repro.cycles import Category, CycleLedger, DEFAULT_COSTS
from repro.errors import ConfigurationError
from repro.isa.hart import Hart
from repro.isa.iopmp import IopmpUnit
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import AccessType
from repro.sm.pmp_plan import MAX_POOL_REGIONS, PmpController

DRAM = 0x8000_0000
FW_SIZE = 2 << 20
POOL = DRAM + (64 << 20)
POOL_SIZE = 16 << 20


@pytest.fixture
def env():
    ledger = CycleLedger()
    harts = [Hart(i, ledger) for i in range(2)]
    iopmp = IopmpUnit()
    controller = PmpController(
        harts, iopmp, DRAM, FW_SIZE, DRAM, 1 << 30, ledger, DEFAULT_COSTS
    )
    return harts, iopmp, controller, ledger


def test_firmware_protected_from_lower_modes(env):
    harts, _, _, _ = env
    for hart in harts:
        assert not hart.pmp.check(DRAM, 8, AccessType.LOAD, PrivilegeMode.HS)
        assert not hart.pmp.check(DRAM + FW_SIZE - 8, 8, AccessType.STORE, PrivilegeMode.VS)


def test_firmware_entry_locked_against_m_too(env):
    """Even the SM cannot accidentally write through entry 0's lock."""
    harts, _, _, _ = env
    assert not harts[0].pmp.check(DRAM, 8, AccessType.STORE, PrivilegeMode.M)


def test_normal_memory_open_in_both_worlds(env):
    harts, _, controller, _ = env
    controller.add_pool_region(POOL, POOL_SIZE)
    normal = DRAM + (200 << 20)
    assert harts[0].pmp.check(normal, 8, AccessType.LOAD, PrivilegeMode.HS)
    controller.open_pool(harts[0])
    assert harts[0].pmp.check(normal, 8, AccessType.LOAD, PrivilegeMode.VS)


def test_pool_closed_by_default(env):
    harts, _, controller, _ = env
    controller.add_pool_region(POOL, POOL_SIZE)
    assert not harts[0].pmp.check(POOL, 8, AccessType.LOAD, PrivilegeMode.HS)
    assert not harts[0].pmp.check(POOL, 8, AccessType.STORE, PrivilegeMode.HS)


def test_open_then_close_cycle(env):
    harts, _, controller, _ = env
    controller.add_pool_region(POOL, POOL_SIZE)
    hart = harts[0]
    controller.open_pool(hart)
    assert controller.pool_is_open(hart)
    assert hart.pmp.check(POOL, 8, AccessType.LOAD, PrivilegeMode.VS)
    assert hart.pmp.check(POOL, 8, AccessType.STORE, PrivilegeMode.VS)
    controller.close_pool(hart)
    assert not controller.pool_is_open(hart)
    assert not hart.pmp.check(POOL, 8, AccessType.LOAD, PrivilegeMode.VS)


def test_toggle_is_per_hart(env):
    harts, _, controller, _ = env
    controller.add_pool_region(POOL, POOL_SIZE)
    controller.open_pool(harts[0])
    assert harts[0].pmp.check(POOL, 8, AccessType.LOAD, PrivilegeMode.VS)
    assert not harts[1].pmp.check(POOL, 8, AccessType.LOAD, PrivilegeMode.VS)


def test_new_region_respects_current_hart_state(env):
    harts, _, controller, _ = env
    controller.add_pool_region(POOL, POOL_SIZE)
    controller.open_pool(harts[0])
    second = POOL + POOL_SIZE
    controller.add_pool_region(second, POOL_SIZE)
    assert harts[0].pmp.check(second, 8, AccessType.LOAD, PrivilegeMode.VS)
    assert not harts[1].pmp.check(second, 8, AccessType.LOAD, PrivilegeMode.VS)


def test_iopmp_denies_pool_dma_in_both_worlds(env):
    harts, iopmp, controller, _ = env
    controller.add_pool_region(POOL, POOL_SIZE)
    assert not iopmp.check(0, POOL, 64, AccessType.STORE)
    controller.open_pool(harts[0])  # CPU-side open must NOT open DMA
    assert not iopmp.check(0, POOL, 64, AccessType.STORE)
    assert iopmp.check(0, DRAM + (200 << 20), 64, AccessType.STORE)


def test_region_limit(env):
    _, _, controller, _ = env
    for i in range(MAX_POOL_REGIONS):
        controller.add_pool_region(POOL + i * POOL_SIZE, POOL_SIZE)
    with pytest.raises(ConfigurationError):
        controller.add_pool_region(POOL + MAX_POOL_REGIONS * POOL_SIZE, POOL_SIZE)


def test_toggle_charges_pmp_cycles(env):
    harts, _, controller, ledger = env
    controller.add_pool_region(POOL, POOL_SIZE)
    before = ledger.by_category().get(Category.PMP, 0)
    controller.open_pool(harts[0])
    delta = ledger.by_category()[Category.PMP] - before
    assert delta == DEFAULT_COSTS.pmp_entry_write + DEFAULT_COSTS.pmp_fence


def test_entries_used_accounting(env):
    _, _, controller, _ = env
    assert controller.pmp_entries_used == 2
    controller.add_pool_region(POOL, POOL_SIZE)
    assert controller.pmp_entries_used == 3
