"""Migration error paths: framing, stale keys, replay, partial-import cleanup.

The happy path lives in tests/integration/test_migration.py; this file
pins every way an import must *refuse* -- with a typed
:class:`SecurityViolation`, never a Python error unwinding M mode -- and
that a refused or half-done import leaks no secure-pool frames.
"""

import json
import struct

import pytest

from repro import Machine, MachineConfig, SecurityViolation
from repro.mem.physmem import PAGE_SIZE
from repro.sm.cvm import CvmState
from repro.sm.migration import (
    _MAGIC,
    _keystream,
    _mac,
    _xor,
    derive_migration_key,
    import_cvm,
)
from repro.sm.secmem import OWNER_FREE, OWNER_SM

KEY = derive_migration_key(b"test-fleet", b"src-nonce", b"dst-nonce")


def _seal(plaintext: bytes, key: bytes = KEY) -> bytes:
    """Seal arbitrary plaintext the way a peer SM would (valid MAC)."""
    ciphertext = _xor(plaintext, _keystream(key, len(plaintext)))
    return _MAGIC + ciphertext + _mac(key, ciphertext)


def _frame(header: dict, pages: bytes = b"") -> bytes:
    """Frame a header dict + raw page section into blob plaintext."""
    header_bytes = json.dumps(header).encode()
    return struct.pack("<I", len(header_bytes)) + header_bytes + pages


def _good_header(page_count: int = 0) -> dict:
    return {
        "layout": {
            "dram_base": 0x8000_0000, "dram_size": 16 << 20,
            "mmio_base": 0x1000_0000, "mmio_size": 1 << 20,
            "shared_base": 1 << 38, "shared_size": 16 << 20,
        },
        "measurement": "ab" * 32,
        "rtmrs": [],
        "vcpus": [{"gprs": {}, "csrs": {}, "pc": 0x8000_0000}],
        "page_count": page_count,
    }


def _export_blob(key: bytes = KEY):
    """A genuine sealed blob plus its source machine."""
    source = Machine(MachineConfig())
    session = source.launch_confidential_vm(image=b"mig-err-guest" * 50)
    base = session.layout.dram_base + (4 << 20)
    source.run(session, lambda ctx: ctx.write_bytes(base, b"state" * 100))
    return source.export_confidential_vm(session, key)


def _pool_is_clean(machine: Machine) -> bool:
    """Every secure-pool frame is free or the SM's own metadata."""
    return all(
        owner in (OWNER_FREE, OWNER_SM)
        for owner in machine.monitor.pool._page_owner.values()
    )


class TestTransportTampering:
    """MAC-level refusals: the ferry cannot modify or forge a blob."""

    def test_every_single_byte_flip_is_caught(self):
        blob = _export_blob()
        destination = Machine(MachineConfig())
        # Sample positions across magic, ciphertext and MAC.
        for pos in (0, len(_MAGIC), len(blob) // 2, len(blob) - 1):
            bad = blob[:pos] + bytes([blob[pos] ^ 0x40]) + blob[pos + 1:]
            with pytest.raises(SecurityViolation):
                destination.import_confidential_vm(bad, KEY)
        assert _pool_is_clean(destination)

    def test_truncation_at_any_point_is_caught(self):
        blob = _export_blob()
        destination = Machine(MachineConfig())
        for keep in (0, 4, len(_MAGIC), len(_MAGIC) + 31, len(blob) - 1):
            with pytest.raises(SecurityViolation):
                destination.import_confidential_vm(blob[:keep], KEY)
        assert _pool_is_clean(destination)

    def test_stale_key_rejected(self):
        """A key derived from yesterday's nonce authenticates nothing."""
        blob = _export_blob()
        stale = derive_migration_key(b"test-fleet", b"src-nonce", b"old-nonce")
        destination = Machine(MachineConfig())
        with pytest.raises(SecurityViolation, match="authentication"):
            destination.import_confidential_vm(blob, stale)

    def test_wrong_fleet_secret_rejected(self):
        blob = _export_blob()
        foreign = derive_migration_key(b"other-fleet", b"src-nonce", b"dst-nonce")
        destination = Machine(MachineConfig())
        with pytest.raises(SecurityViolation, match="authentication"):
            destination.import_confidential_vm(blob, foreign)


class TestReplay:
    """Each sealed instance imports at most once per destination SM."""

    def test_double_import_refused(self):
        blob = _export_blob()
        destination = Machine(MachineConfig())
        destination.import_confidential_vm(blob, KEY)
        with pytest.raises(SecurityViolation, match="replayed"):
            destination.import_confidential_vm(blob, KEY)

    def test_refused_replay_does_not_destroy_the_first_instance(self):
        blob = _export_blob()
        destination = Machine(MachineConfig())
        first = destination.import_confidential_vm(blob, KEY)
        with pytest.raises(SecurityViolation):
            destination.import_confidential_vm(blob, KEY)
        assert first.cvm.state is not CvmState.DESTROYED
        base = first.layout.dram_base + (4 << 20)
        read_back = destination.run(first, lambda ctx: ctx.read_bytes(base, 5))
        assert read_back["workload_result"] == b"state"

    def test_exports_are_fresh_so_honest_reimports_still_work(self):
        """Two exports never seal byte-identical blobs (export_seq).

        A CVM that bounces A->B->A->B with unchanged state would
        otherwise reseal to the same bytes and trip B's replay registry
        on a perfectly legitimate second arrival.
        """
        machine_a = Machine(MachineConfig())
        machine_b = Machine(MachineConfig())
        session = machine_a.launch_confidential_vm(image=b"bouncer" * 100)
        machine_a.run(session, lambda ctx: ctx.compute(100))

        blob1 = machine_a.export_confidential_vm(session, KEY)
        session = machine_b.import_confidential_vm(blob1, KEY)
        blob2 = machine_b.export_confidential_vm(session, KEY)
        session = machine_a.import_confidential_vm(blob2, KEY)
        blob3 = machine_a.export_confidential_vm(session, KEY)
        assert blob3 != blob1  # same state, fresh seal
        # The second B arrival must not be mistaken for a replay.
        machine_b.import_confidential_vm(blob3, KEY)


class TestFraming:
    """Bounds checks on authenticated-but-malformed plaintext.

    These forge blobs with a *valid* MAC (as a buggy or downlevel peer
    SM could), so only the framing validation stands between the parser
    and an IndexError in M mode.
    """

    def _expect_rejected(self, plaintext: bytes, match: str):
        destination = Machine(MachineConfig())
        with pytest.raises(SecurityViolation, match=match):
            import_cvm(destination.monitor, _seal(plaintext), KEY)
        assert _pool_is_clean(destination)

    def test_empty_plaintext(self):
        self._expect_rejected(b"", "no header length")

    def test_header_length_past_end(self):
        self._expect_rejected(struct.pack("<I", 5000) + b"x" * 10, "exceeds")

    def test_zero_header_length(self):
        self._expect_rejected(struct.pack("<I", 0) + b"{}", "header length")

    def test_header_not_json(self):
        payload = b"\x00not json at all"
        self._expect_rejected(
            struct.pack("<I", len(payload)) + payload, "not valid JSON"
        )

    def test_header_missing_required_field(self):
        for field in ("layout", "vcpus", "page_count", "measurement"):
            header = _good_header()
            del header[field]
            self._expect_rejected(_frame(header), f"missing '{field}'")

    def test_header_with_no_vcpus(self):
        header = _good_header()
        header["vcpus"] = []
        self._expect_rejected(_frame(header), "no vCPUs")

    def test_page_count_body_mismatch(self):
        # Claims one page but carries none...
        self._expect_rejected(_frame(_good_header(page_count=1)),
                              "inconsistent")
        # ...and carries half a page record.
        self._expect_rejected(
            _frame(_good_header(page_count=1), b"\0" * (8 + PAGE_SIZE // 2)),
            "inconsistent",
        )

    def test_negative_page_count(self):
        self._expect_rejected(_frame(_good_header(page_count=-1)),
                              "inconsistent")


class TestPartialImportCleanup:
    """A mid-copy failure scrubs and recycles everything it mapped."""

    def _blob_with_bad_gpa(self, pages: int = 3) -> bytes:
        """Several good pages, then one mapped outside private DRAM."""
        header = _good_header(page_count=pages + 1)
        section = bytearray()
        for i in range(pages):
            section += struct.pack("<Q", 0x8000_0000 + i * PAGE_SIZE)
            section += bytes(PAGE_SIZE)
        section += struct.pack("<Q", 0x1234_5000)  # outside the window
        section += bytes(PAGE_SIZE)
        return _seal(_frame(header, bytes(section)))

    def test_out_of_window_gpa_rejected_without_leak(self):
        destination = Machine(MachineConfig())
        with pytest.raises(SecurityViolation, match="outside"):
            import_cvm(destination.monitor, self._blob_with_bad_gpa(), KEY)
        # The partial CVM was destroyed and every frame recycled.
        assert _pool_is_clean(destination)
        for cvm in destination.monitor.cvms.values():
            assert cvm.state is CvmState.DESTROYED

    def test_failed_import_leaves_resident_cvms_untouched(self):
        destination = Machine(MachineConfig())
        resident = destination.launch_confidential_vm(image=b"resident" * 64)
        with pytest.raises(SecurityViolation):
            import_cvm(destination.monitor, self._blob_with_bad_gpa(), KEY)
        assert resident.cvm.state is not CvmState.DESTROYED
        destination.run(resident, lambda ctx: ctx.compute(100))

    def test_failed_import_is_not_registered_as_imported(self):
        """A refused blob may be re-delivered intact later and succeed."""
        blob = _export_blob()
        destination = Machine(MachineConfig())
        tampered = blob[:-1] + bytes([blob[-1] ^ 1])
        with pytest.raises(SecurityViolation):
            destination.import_confidential_vm(tampered, KEY)
        # The genuine blob still imports: only *successful* imports are
        # recorded in the replay registry.
        destination.import_confidential_vm(blob, KEY)
