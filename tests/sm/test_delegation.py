"""ZION's trap-delegation profiles (paper IV-A)."""

from repro.isa.hart import Hart
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import (
    ExceptionCause,
    InterruptCause,
    route_exception,
    route_interrupt,
)
from repro.sm.delegation import CVM_MODE, NORMAL_MODE

E = ExceptionCause
I = InterruptCause


def _route_e(profile, cause, mode=PrivilegeMode.VS):
    return route_exception(cause, mode, profile.medeleg, profile.hedeleg)


def _route_i(profile, cause, mode=PrivilegeMode.VS):
    return route_interrupt(cause, mode, profile.mideleg, profile.hideleg)


class TestCvmMode:
    def test_guest_page_faults_land_in_sm(self):
        """The core short-path property: the hypervisor never sees them."""
        for cause in (E.LOAD_GUEST_PAGE_FAULT, E.STORE_GUEST_PAGE_FAULT,
                      E.INSTRUCTION_GUEST_PAGE_FAULT):
            assert _route_e(CVM_MODE, cause) is PrivilegeMode.M

    def test_vs_ecall_lands_in_sm(self):
        assert _route_e(CVM_MODE, E.ECALL_FROM_VS) is PrivilegeMode.M

    def test_self_handled_traps_reach_guest_directly(self):
        """Paper criterion 1: CVM-processable traps delegate to VS."""
        for cause in (E.ECALL_FROM_U, E.LOAD_PAGE_FAULT, E.STORE_PAGE_FAULT,
                      E.ILLEGAL_INSTRUCTION, E.BREAKPOINT):
            assert _route_e(CVM_MODE, cause, PrivilegeMode.VU) is PrivilegeMode.VS

    def test_nothing_routes_to_hypervisor(self):
        """No exception from CVM mode may land in HS."""
        for cause in E:
            dest = _route_e(CVM_MODE, cause)
            assert dest is not PrivilegeMode.HS, cause

    def test_machine_timer_lands_in_sm(self):
        assert _route_i(CVM_MODE, I.MACHINE_TIMER) is PrivilegeMode.M

    def test_guest_timer_delegated_to_guest(self):
        assert _route_i(CVM_MODE, I.VIRTUAL_SUPERVISOR_TIMER) is PrivilegeMode.VS

    def test_no_interrupt_routes_to_hypervisor(self):
        for cause in I:
            assert _route_i(CVM_MODE, cause) is not PrivilegeMode.HS, cause


class TestNormalMode:
    def test_guest_page_faults_reach_kvm(self):
        for cause in (E.LOAD_GUEST_PAGE_FAULT, E.STORE_GUEST_PAGE_FAULT):
            assert _route_e(NORMAL_MODE, cause) is PrivilegeMode.HS

    def test_vs_ecall_reaches_kvm(self):
        assert _route_e(NORMAL_MODE, E.ECALL_FROM_VS) is PrivilegeMode.HS

    def test_guest_internal_traps_stay_in_guest(self):
        assert _route_e(NORMAL_MODE, E.ECALL_FROM_U, PrivilegeMode.VU) is PrivilegeMode.VS

    def test_supervisor_timer_delegated_to_hs(self):
        assert _route_i(NORMAL_MODE, I.SUPERVISOR_TIMER, PrivilegeMode.HS) is PrivilegeMode.HS


class TestApply:
    def test_apply_writes_delegation_csrs(self):
        hart = Hart(0)
        CVM_MODE.apply(hart)
        assert hart.medeleg == CVM_MODE.medeleg
        assert hart.hideleg == CVM_MODE.hideleg
        NORMAL_MODE.apply(hart)
        assert hart.medeleg == NORMAL_MODE.medeleg
        assert E.ECALL_FROM_VS in hart.medeleg

    def test_profiles_differ_exactly_on_host_visible_traps(self):
        diff = NORMAL_MODE.medeleg - CVM_MODE.medeleg
        assert diff == frozenset(
            {
                E.ECALL_FROM_VS,
                E.INSTRUCTION_GUEST_PAGE_FAULT,
                E.LOAD_GUEST_PAGE_FAULT,
                E.STORE_GUEST_PAGE_FAULT,
                E.VIRTUAL_INSTRUCTION,
            }
        )
