"""Measurement, reports, and platform randomness."""

import pytest

from repro.sm.attestation import AttestationService, MeasurementLog


@pytest.fixture
def service():
    return AttestationService(b"device-secret", b"entropy-seed")


class TestMeasurementLog:
    def test_deterministic(self):
        a, b = MeasurementLog(), MeasurementLog()
        for log in (a, b):
            log.extend("image", b"code")
            log.extend("entry", b"\x00" * 8)
        assert a.finalize() == b.finalize()

    def test_order_sensitive(self):
        a, b = MeasurementLog(), MeasurementLog()
        a.extend("x", b"1")
        a.extend("y", b"2")
        b.extend("y", b"2")
        b.extend("x", b"1")
        assert a.finalize() != b.finalize()

    def test_label_data_boundary_unambiguous(self):
        """("ab", "c") must not collide with ("a", "bc")."""
        a, b = MeasurementLog(), MeasurementLog()
        a.extend("ab", b"c")
        b.extend("a", b"bc")
        assert a.finalize() != b.finalize()

    def test_extend_after_finalize_rejected(self):
        log = MeasurementLog()
        log.finalize()
        with pytest.raises(ValueError):
            log.extend("late", b"data")

    def test_finalize_idempotent(self):
        log = MeasurementLog()
        log.extend("x", b"1")
        assert log.finalize() == log.finalize()


class TestRandom:
    def test_requested_length(self, service):
        for n in (1, 16, 32, 100):
            assert len(service.random_bytes(n)) == n

    def test_outputs_differ_across_calls(self, service):
        assert service.random_bytes(32) != service.random_bytes(32)

    def test_deterministic_given_seed(self):
        a = AttestationService(b"k", b"seed")
        b = AttestationService(b"k", b"seed")
        assert a.random_bytes(32) == b.random_bytes(32)

    def test_different_seeds_differ(self):
        a = AttestationService(b"k", b"seed-1")
        b = AttestationService(b"k", b"seed-2")
        assert a.random_bytes(32) != b.random_bytes(32)


class TestReports:
    def test_sign_and_verify(self, service):
        report = service.sign_report(1, b"\xaa" * 32, b"user-data")
        assert service.verify_report(report)

    def test_tampered_measurement_fails(self, service):
        import dataclasses

        report = service.sign_report(1, b"\xaa" * 32, b"")
        forged = dataclasses.replace(report, measurement=b"\xbb" * 32)
        assert not service.verify_report(forged)

    def test_tampered_report_data_fails(self, service):
        import dataclasses

        report = service.sign_report(1, b"\xaa" * 32, b"honest")
        forged = dataclasses.replace(report, report_data=b"forged")
        assert not service.verify_report(forged)

    def test_wrong_cvm_id_fails(self, service):
        import dataclasses

        report = service.sign_report(1, b"\xaa" * 32, b"")
        forged = dataclasses.replace(report, cvm_id=2)
        assert not service.verify_report(forged)

    def test_other_platform_key_fails(self, service):
        other = AttestationService(b"other-secret", b"entropy-seed")
        report = service.sign_report(1, b"\xaa" * 32, b"")
        assert not other.verify_report(report)

    def test_as_dict_serializable(self, service):
        import json

        report = service.sign_report(3, b"\xcc" * 32, b"rd")
        text = json.dumps(report.as_dict())
        assert "cc" * 32 in text
