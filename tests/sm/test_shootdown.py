"""Cross-hart shootdown on pool-coverage changes."""

import pytest

from repro import Machine, MachineConfig
from repro.cycles import Category


def test_pool_registration_ipis_other_harts(machine):
    """Registration fences all four harts; IPIs are sent and acked."""
    ipis = []
    original = machine.clint.broadcast_ipi

    def spy(exclude=None):
        ipis.append(exclude)
        original(exclude=exclude)

    machine.clint.broadcast_ipi = spy
    base = machine.host_allocator.alloc(size=1 << 20)
    machine.monitor.ecall_register_pool_memory(base, 1 << 20)
    assert ipis == [0]
    # All IPIs were acknowledged (cleared) by the end of the call.
    for hart_id in range(machine.config.hart_count):
        assert not machine.clint.ipi_pending(hart_id)


def test_shootdown_cost_scales_with_hart_count():
    costs = {}
    for harts in (1, 4):
        machine = Machine(MachineConfig(hart_count=harts))
        base = machine.host_allocator.alloc(size=1 << 20)
        with machine.ledger.span() as span:
            machine.monitor.ecall_register_pool_memory(base, 1 << 20)
        costs[harts] = span.breakdown.get(Category.TLB, 0)
    assert costs[4] > costs[1]
    delta = costs[4] - costs[1]
    assert delta == 3 * machine.costs.ipi_shootdown_cost


def test_shootdown_skipped_without_clint(machine):
    """The monitor degrades gracefully when no CLINT is wired (unit use)."""
    machine.monitor.clint = None
    base = machine.host_allocator.alloc(size=1 << 20)
    machine.monitor.ecall_register_pool_memory(base, 1 << 20)  # must not raise
