"""Secure Monitor ECALL interface and fault handling."""

import pytest

from repro import Machine, MachineConfig
from repro.errors import EcallError, SecurityViolation
from repro.mem.physmem import PAGE_SIZE
from repro.sm.alloc import AllocStage
from repro.sm.cvm import CvmState, GpaLayout
from repro.sm.secmem import SECURE_BLOCK_SIZE


@pytest.fixture
def monitor(machine):
    return machine.monitor


class TestLifecycleEcalls:
    def test_create_allocates_root_in_pool(self, machine, monitor):
        cvm_id = monitor.ecall_create_cvm()
        cvm = monitor.cvms[cvm_id]
        assert cvm.hgatp_root % (16 * 1024) == 0
        assert monitor.pool.contains(cvm.hgatp_root, 16 * 1024)

    def test_create_requires_vcpus(self, monitor):
        with pytest.raises(EcallError):
            monitor.ecall_create_cvm(vcpu_count=0)

    def test_ids_are_unique(self, monitor):
        ids = {monitor.ecall_create_cvm() for _ in range(5)}
        assert len(ids) == 5
        vmids = {monitor.cvms[i].vmid for i in ids}
        assert len(vmids) == 5

    def test_finalize_requires_shared_vcpus(self, monitor):
        cvm_id = monitor.ecall_create_cvm()
        with pytest.raises(EcallError):
            monitor.ecall_finalize(cvm_id)

    def test_shared_vcpu_must_be_normal_memory(self, machine, monitor):
        cvm_id = monitor.ecall_create_cvm()
        pool_page = monitor.pool.regions[0][0]
        with pytest.raises(SecurityViolation):
            monitor.ecall_assign_shared_vcpu(cvm_id, 0, pool_page)

    def test_image_load_measured_and_mapped(self, machine, monitor):
        cvm_id = monitor.ecall_create_cvm()
        page = machine.host_allocator.alloc()
        monitor.ecall_assign_shared_vcpu(cvm_id, 0, page)
        image = b"kernel!!" * 512  # one page
        monitor.ecall_load_image(cvm_id, GpaLayout().dram_base, image)
        measurement = monitor.ecall_finalize(cvm_id)
        assert len(measurement) == 32
        cvm = monitor.cvms[cvm_id]
        assert cvm.state is CvmState.FINALIZED
        # The image bytes physically landed in a secure frame.
        from repro.mem.pagetable import Sv39x4

        class Raw:
            def read_u64(self, a):
                return machine.dram.read_u64(a)

        result = Sv39x4().walk(Raw(), cvm.hgatp_root, GpaLayout().dram_base)
        assert machine.dram.read(result.pa, 8) == b"kernel!!"
        assert monitor.pool.contains(result.pa, PAGE_SIZE)

    def test_identical_images_measure_identically(self):
        reports = []
        for _ in range(2):
            machine = Machine(MachineConfig())
            session = machine.launch_confidential_vm(image=b"same" * 1024)
            reports.append(session.cvm.measurement)
        assert reports[0] == reports[1]

    def test_different_images_measure_differently(self):
        a = Machine(MachineConfig()).launch_confidential_vm(image=b"aaaa" * 1024)
        b = Machine(MachineConfig()).launch_confidential_vm(image=b"bbbb" * 1024)
        assert a.cvm.measurement != b.cvm.measurement

    def test_load_image_after_finalize_rejected(self, machine, monitor):
        session = machine.launch_confidential_vm(image=b"x")
        with pytest.raises(ValueError):
            monitor.ecall_load_image(session.cvm.cvm_id, GpaLayout().dram_base, b"late")

    def test_unaligned_image_gpa_rejected(self, monitor):
        cvm_id = monitor.ecall_create_cvm()
        with pytest.raises(EcallError):
            monitor.ecall_load_image(cvm_id, GpaLayout().dram_base + 100, b"x")

    def test_unknown_cvm_rejected(self, monitor):
        with pytest.raises(EcallError):
            monitor.ecall_finalize(999)

    def test_suspend_resume_cycle(self, machine, monitor):
        session = machine.launch_confidential_vm(image=b"x")
        cvm_id = session.cvm.cvm_id
        monitor.ecall_suspend(cvm_id)
        assert monitor.cvms[cvm_id].state is CvmState.SUSPENDED
        with pytest.raises(ValueError):
            monitor.ecall_suspend(cvm_id)
        monitor.ecall_resume(cvm_id)
        assert monitor.cvms[cvm_id].state is CvmState.FINALIZED


class TestDestroy:
    def test_destroy_scrubs_frames(self, machine, monitor):
        session = machine.launch_confidential_vm(image=b"secret-bytes" * 300)
        cvm = session.cvm
        from repro.mem.pagetable import Sv39x4

        class Raw:
            def read_u64(self, a):
                return machine.dram.read_u64(a)

        pa = Sv39x4().walk(Raw(), cvm.hgatp_root, cvm.layout.dram_base).pa
        assert machine.dram.read(pa, 12) == b"secret-bytes"
        monitor.ecall_destroy(cvm.cvm_id)
        assert machine.dram.read(pa, 12) == bytes(12)
        assert cvm.state is CvmState.DESTROYED

    def test_destroy_recycles_blocks(self, machine, monitor):
        free_before = monitor.pool.free_blocks
        session = machine.launch_confidential_vm(image=b"z" * (SECURE_BLOCK_SIZE))
        assert monitor.pool.free_blocks < free_before
        monitor.ecall_destroy(session.cvm.cvm_id)
        # Data blocks return; only SM metadata blocks stay consumed.
        assert monitor.pool.free_blocks >= free_before - 1

    def test_destroyed_cvm_refuses_operations(self, machine, monitor):
        session = machine.launch_confidential_vm(image=b"x")
        monitor.ecall_destroy(session.cvm.cvm_id)
        with pytest.raises(ValueError):
            monitor.ecall_destroy(session.cvm.cvm_id)


class TestGuestServices:
    def test_attestation_report_roundtrip(self, machine, monitor):
        session = machine.launch_confidential_vm(image=b"measured")
        report = monitor.ecall_attestation_report(session.cvm.cvm_id, b"challenge")
        assert report.measurement == session.cvm.measurement
        assert report.report_data == b"challenge"
        assert monitor.attestation.verify_report(report)

    def test_report_requires_finalization(self, monitor):
        cvm_id = monitor.ecall_create_cvm()
        with pytest.raises(EcallError):
            monitor.ecall_attestation_report(cvm_id)

    def test_get_random_bounds(self, machine, monitor):
        session = machine.launch_confidential_vm(image=b"x")
        assert len(monitor.ecall_get_random(session.cvm.cvm_id, 64)) == 64
        with pytest.raises(EcallError):
            monitor.ecall_get_random(session.cvm.cvm_id, 0)
        with pytest.raises(EcallError):
            monitor.ecall_get_random(session.cvm.cvm_id, 10_000)


class TestFaultHandling:
    def test_fault_maps_private_page(self, machine, monitor):
        session = machine.launch_confidential_vm(image=b"x")
        cvm = session.cvm
        gpa = cvm.layout.dram_base + (8 << 20)
        stage = monitor.handle_guest_page_fault(machine.hart, cvm, 0, gpa)
        assert stage in (AllocStage.PAGE_CACHE, AllocStage.NEW_BLOCK)
        from repro.mem.pagetable import Sv39x4

        class Raw:
            def read_u64(self, a):
                return machine.dram.read_u64(a)

        result = Sv39x4().walk(Raw(), cvm.hgatp_root, gpa)
        assert result is not None
        assert monitor.pool.owner_of(result.pa) == cvm.cvm_id

    def test_fault_outside_regions_is_violation(self, machine, monitor):
        session = machine.launch_confidential_vm(image=b"x")
        with pytest.raises(SecurityViolation):
            monitor.handle_guest_page_fault(machine.hart, session.cvm, 0, 0x7000_0000)

    def test_fault_stage_counters_accumulate(self, machine, monitor):
        session = machine.launch_confidential_vm(image=b"x")
        cvm = session.cvm
        base = cvm.layout.dram_base + (16 << 20)
        for i in range(70):  # more than one 64-page block
            monitor.handle_guest_page_fault(machine.hart, cvm, 0, base + i * PAGE_SIZE)
        counts = monitor.fault_stage_counts
        assert counts[AllocStage.PAGE_CACHE] > counts[AllocStage.NEW_BLOCK] > 0


class TestPoolExpansion:
    def test_stage3_expands_pool_via_hypervisor(self):
        machine = Machine(MachineConfig(initial_pool_bytes=1 << 20))
        session = machine.launch_confidential_vm(image=b"x")
        cvm = session.cvm
        machine.monitor.world_switch.enter_cvm(machine.hart, cvm, cvm.vcpu(0))
        regions_before = len(machine.monitor.pool.regions)
        base = cvm.layout.dram_base + (4 << 20)
        # Exhaust the remaining pool; the SM must escalate to the host.
        for i in range(600):
            machine.monitor.handle_guest_page_fault(
                machine.hart, cvm, 0, base + i * PAGE_SIZE
            )
        assert machine.hypervisor.pool_expansions >= 1
        assert len(machine.monitor.pool.regions) > regions_before
        assert machine.monitor.fault_stage_counts[AllocStage.POOL_EXPANSION] >= 1

    def test_register_pool_memory_validates_overlap(self, machine, monitor):
        base, size = monitor.pool.regions[0]
        with pytest.raises(SecurityViolation):
            monitor.ecall_register_pool_memory(base, size)
