"""Split-page-table shared memory (paper IV-E)."""

import pytest

from repro.errors import SecurityViolation
from repro.mem.pagetable import Sv39x4
from repro.mem.physmem import PAGE_SIZE


class _Raw:
    def __init__(self, dram):
        self.dram = dram

    def read_u64(self, addr):
        return self.dram.read_u64(addr)

    def write_u64(self, addr, value):
        self.dram.write_u64(addr, value)


@pytest.fixture
def env(machine):
    session = machine.launch_confidential_vm(image=b"x" * 4096)
    return machine, session, machine.monitor.split, session.cvm


def test_shared_root_index_boundary(env):
    machine, session, split, cvm = env
    base_index = split.shared_root_index_base(cvm)
    assert base_index == (1 << 38) >> 30 == 256


def test_root_contains_both_subtree_kinds(env):
    """The CVM root points at private (secure) and shared (normal) tables."""
    machine, session, split, cvm = env
    raw = _Raw(machine.dram)
    pool = machine.monitor.pool
    sv = Sv39x4()
    private_tables, shared_tables = [], []
    for index in range(sv.root_entries):
        pte = machine.dram.read_u64(cvm.hgatp_root + 8 * index)
        if not pte & 1:
            continue
        target = (pte >> 10) << 12
        if index < split.shared_root_index_base(cvm):
            private_tables.append(target)
        else:
            shared_tables.append(target)
    assert private_tables, "image load must have created private mappings"
    assert shared_tables, "launch must have linked the shared subtree"
    for table in private_tables:
        assert pool.contains(table, PAGE_SIZE)
    for table in shared_tables:
        assert not pool.contains(table, PAGE_SIZE)


def test_link_rejects_private_half_index(env):
    machine, session, split, cvm = env
    table = machine.host_allocator.alloc()
    machine.dram.zero_range(table, PAGE_SIZE)
    with pytest.raises(SecurityViolation):
        split.link_shared_subtree(cvm, 0, table)


def test_link_rejects_secure_pool_table(env):
    machine, session, split, cvm = env
    pool_page = machine.monitor.pool.regions[0][0]
    with pytest.raises(SecurityViolation):
        split.link_shared_subtree(cvm, 300, pool_page)


def test_link_rejects_unaligned_table(env):
    machine, session, split, cvm = env
    with pytest.raises(SecurityViolation):
        split.link_shared_subtree(cvm, 300, machine.host_allocator.alloc() + 8)


def test_link_rejects_subtree_premapping_secure_memory(env):
    """A donated table already aliasing the pool must be refused."""
    machine, session, split, cvm = env
    table = machine.host_allocator.alloc()
    machine.dram.zero_range(table, PAGE_SIZE)
    pool_page = machine.monitor.pool.regions[0][0]
    # Hypervisor forges a leaf-bearing subtree: entry 0 -> leaf table whose
    # slot 0 maps the pool.
    leaf_table = machine.host_allocator.alloc()
    machine.dram.zero_range(leaf_table, PAGE_SIZE)
    machine.dram.write_u64(leaf_table + 0, (pool_page >> 12) << 10 | 0b111 | 1)
    machine.dram.write_u64(table + 0, (leaf_table >> 12) << 10 | 1)
    with pytest.raises(SecurityViolation):
        split.link_shared_subtree(cvm, 300, table)


def test_map_private_rejects_foreign_frame(env):
    """Stage-2 disjointness: a frame owned by another CVM is refused."""
    machine, session, split, cvm = env
    other_id = machine.monitor.ecall_create_cvm()
    other = machine.monitor.cvms[other_id]
    allocator = machine.monitor._allocators[other_id]
    pa, _ = allocator.alloc_page(other_id, 0)
    with pytest.raises(SecurityViolation):
        split.map_private(cvm, cvm.layout.dram_base + 0x10000, pa, lambda: 0)


def test_map_private_rejects_gpa_outside_private_region(env):
    machine, session, split, cvm = env
    allocator = machine.monitor._allocators[cvm.cvm_id]
    pa, _ = allocator.alloc_page(cvm.cvm_id, 0)
    with pytest.raises(SecurityViolation):
        split.map_private(cvm, cvm.layout.shared_base, pa, lambda: 0)


def test_unmap_private_returns_frame(env):
    machine, session, split, cvm = env
    gpa = cvm.layout.dram_base  # image page mapped at launch
    pa = split.unmap_private(cvm, gpa)
    assert machine.monitor.pool.contains(pa, PAGE_SIZE)


def test_shared_leaf_safety_predicate(env):
    machine, session, split, cvm = env
    pool_base = machine.monitor.pool.regions[0][0]
    assert not split.shared_leaf_is_safe(pool_base)
    assert split.shared_leaf_is_safe(machine.config.dram_base + (512 << 20))


def test_relink_shared_subtree_flushes_stale_translations(env):
    """Swapping a live shared subtree must fence the old table's entries."""
    machine, session, split, cvm = env
    monitor = machine.monitor
    tlb = monitor.translator.tlb
    root_index, old_table = next(iter(cvm.shared_subtrees.items()))
    # A translation the hart walked through the soon-to-be-replaced
    # subtree, still sitting in the TLB when the host swaps tables.
    vpage = cvm.layout.shared_base >> 12
    tlb.insert(cvm.vmid, vpage, 0x1234, 0)
    assert tlb.lookup(cvm.vmid, vpage) is not None

    new_table = machine.host_allocator.alloc()
    machine.dram.zero_range(new_table, PAGE_SIZE)
    monitor.ecall_link_shared_subtree(cvm.cvm_id, root_index, new_table)

    assert cvm.shared_subtrees[root_index] == new_table
    assert new_table != old_table
    assert tlb.lookup(cvm.vmid, vpage) is None


def test_first_link_of_empty_slot_does_not_flush(env):
    """A first link installs into an empty slot: nothing stale to fence."""
    machine, session, split, cvm = env
    monitor = machine.monitor
    tlb = monitor.translator.tlb
    fresh_index = max(cvm.shared_subtrees) + 1
    vpage = cvm.layout.shared_base >> 12
    tlb.insert(cvm.vmid, vpage, 0x1234, 0)

    table = machine.host_allocator.alloc()
    machine.dram.zero_range(table, PAGE_SIZE)
    monitor.ecall_link_shared_subtree(cvm.cvm_id, fresh_index, table)

    assert cvm.shared_subtrees[fresh_index] == table
    assert tlb.lookup(cvm.vmid, vpage) is not None
