"""CVM records: GPA layout and lifecycle state machine."""

import pytest

from repro.sm.cvm import ConfidentialVm, CvmState, GpaLayout


class TestGpaLayout:
    def test_defaults(self):
        layout = GpaLayout()
        assert layout.dram_base == 0x8000_0000
        assert layout.shared_base == 1 << 38

    def test_region_predicates_disjoint(self):
        layout = GpaLayout()
        probes = [
            layout.dram_base,
            layout.dram_base + layout.dram_size - 1,
            layout.mmio_base,
            layout.shared_base,
            layout.shared_base + layout.shared_size - 1,
        ]
        for gpa in probes:
            count = sum(
                (layout.in_private_dram(gpa), layout.in_mmio(gpa), layout.in_shared(gpa))
            )
            assert count == 1, hex(gpa)

    def test_boundaries_exclusive(self):
        layout = GpaLayout()
        assert not layout.in_private_dram(layout.dram_base - 1)
        assert not layout.in_private_dram(layout.dram_base + layout.dram_size)
        assert not layout.in_shared(layout.shared_base - 1)
        assert not layout.in_shared(layout.shared_base + layout.shared_size)

    def test_shared_base_must_be_root_slot_aligned(self):
        with pytest.raises(ValueError):
            GpaLayout(shared_base=(1 << 38) + 4096)

    def test_private_dram_must_not_reach_shared(self):
        with pytest.raises(ValueError):
            GpaLayout(dram_base=0x8000_0000, dram_size=(1 << 38))

    def test_page_alignment_required(self):
        with pytest.raises(ValueError):
            GpaLayout(dram_size=(256 << 20) + 1)


class TestConfidentialVm:
    def test_initial_state(self):
        cvm = ConfidentialVm(1, 10, GpaLayout(), vcpu_count=2)
        assert cvm.state is CvmState.CREATED
        assert len(cvm.vcpus) == 2
        assert cvm.shared_vcpus == [None, None]
        assert cvm.hgatp_root is None

    def test_vcpu_lookup(self):
        cvm = ConfidentialVm(1, 10, GpaLayout(), vcpu_count=3)
        assert cvm.vcpu(2).vcpu_id == 2

    def test_require_state(self):
        cvm = ConfidentialVm(1, 10, GpaLayout())
        cvm.require_state(CvmState.CREATED)
        with pytest.raises(ValueError):
            cvm.require_state(CvmState.RUNNING)
        cvm.state = CvmState.RUNNING
        cvm.require_state(CvmState.FINALIZED, CvmState.RUNNING)

    def test_repr_mentions_state(self):
        cvm = ConfidentialVm(5, 11, GpaLayout())
        assert "created" in repr(cvm)
