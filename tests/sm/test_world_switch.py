"""World switching: short path, shared vCPU, and the baselines."""

import pytest

from repro import Machine, MachineConfig
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import ExceptionCause
from repro.sm.vcpu import VcpuState


def _launch(machine):
    session = machine.launch_confidential_vm(image=b"w" * 4096)
    return session, session.cvm, session.cvm.vcpu(0)


@pytest.fixture
def env(machine):
    session, cvm, vcpu = _launch(machine)
    return machine, session, cvm, vcpu


class TestShortPath:
    def test_enter_switches_hart_to_vs(self, env):
        machine, session, cvm, vcpu = env
        machine.monitor.world_switch.enter_cvm(machine.hart, cvm, vcpu)
        assert machine.hart.mode is PrivilegeMode.VS
        assert vcpu.state is VcpuState.RUNNING

    def test_enter_opens_pool_exit_closes_it(self, env):
        machine, session, cvm, vcpu = env
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        assert machine.pmp_controller.pool_is_open(machine.hart)
        ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "timer", "cause": 7})
        assert not machine.pmp_controller.pool_is_open(machine.hart)
        assert machine.hart.mode is PrivilegeMode.HS

    def test_enter_applies_cvm_delegation(self, env):
        machine, session, cvm, vcpu = env
        machine.monitor.world_switch.enter_cvm(machine.hart, cvm, vcpu)
        assert ExceptionCause.LOAD_GUEST_PAGE_FAULT not in machine.hart.medeleg

    def test_exit_applies_normal_delegation(self, env):
        machine, session, cvm, vcpu = env
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "timer", "cause": 7})
        assert ExceptionCause.LOAD_GUEST_PAGE_FAULT in machine.hart.medeleg

    def test_exit_flushes_guest_tlb(self, env):
        machine, session, cvm, vcpu = env
        machine.translator.tlb.insert(cvm.vmid, 0x80000, 0x90000, 0b111)
        machine.monitor.world_switch.exit_to_normal(
            machine.hart, cvm, vcpu, {"kind": "timer", "cause": 7}
        )
        assert machine.translator.tlb.lookup(cvm.vmid, 0x80000) is None

    def test_guest_registers_survive_round_trip(self, env):
        machine, session, cvm, vcpu = env
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        machine.hart.write_gpr("s3", 0x5150)
        machine.hart.csrs.write_raw("vsepc", 0x8000_2000)
        ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "timer", "cause": 7})
        # The hypervisor trashes the hart registers while it runs.
        machine.hart.write_gpr("s3", 0)
        machine.hart.csrs.write_raw("vsepc", 0)
        ws.enter_cvm(machine.hart, cvm, vcpu)
        assert machine.hart.read_gpr("s3") == 0x5150
        assert machine.hart.csrs.read_raw("vsepc") == 0x8000_2000

    def test_exit_counts_tracked(self, env):
        machine, session, cvm, vcpu = env
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "timer", "cause": 7})
        assert cvm.entry_count == 1
        assert cvm.exit_count == 1


class TestCycleShape:
    """The relative cost relations the paper's section V-B establishes."""

    @staticmethod
    def _measure(machine, kind):
        session, cvm, vcpu = _launch(machine)
        ws = machine.monitor.world_switch
        exit_info = (
            {"kind": "mmio_load", "cause": 21, "htval": 0x1000_0000,
             "htinst": 0x503, "gpr_index": 10, "gpr_value": 0}
            if kind == "mmio"
            else {"kind": "timer", "cause": 7}
        )
        ws.enter_cvm(machine.hart, cvm, vcpu)
        with machine.ledger.span() as exit_span:
            ws.exit_to_normal(machine.hart, cvm, vcpu, exit_info)
        if kind == "mmio":
            shared = cvm.shared_vcpus[0]
            shared.hyp_write(machine.hart, "gpr_index", 10)
            shared.hyp_write(machine.hart, "sepc_advance", 4)
        with machine.ledger.span() as enter_span:
            ws.enter_cvm(machine.hart, cvm, vcpu)
        return exit_span.cycles, enter_span.cycles

    def test_shared_vcpu_faster_than_full_marshalling(self):
        fast = Machine(MachineConfig(use_shared_vcpu=True))
        slow = Machine(MachineConfig(use_shared_vcpu=False))
        fast_exit, fast_enter = self._measure(fast, "mmio")
        slow_exit, slow_enter = self._measure(slow, "mmio")
        assert fast_exit < slow_exit
        assert fast_enter < slow_enter

    def test_short_path_faster_than_long_path(self):
        short = Machine(MachineConfig(long_path=False))
        long = Machine(MachineConfig(long_path=True))
        short_exit, short_enter = self._measure(short, "timer")
        long_exit, long_enter = self._measure(long, "timer")
        assert short_exit < long_exit
        assert short_enter < long_enter

    def test_timer_exit_cheaper_than_mmio_exit(self, machine):
        mmio_exit, _ = self._measure(machine, "mmio")
        timer_exit, _ = self._measure(machine, "timer")
        assert timer_exit < mmio_exit


class TestReplyApplication:
    def test_mmio_load_result_lands_in_vcpu_gpr(self, env):
        machine, session, cvm, vcpu = env
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        ws.exit_to_normal(
            machine.hart, cvm, vcpu,
            {"kind": "mmio_load", "cause": 21, "htval": 0x1000_0000,
             "htinst": 0x503, "gpr_index": 10, "gpr_value": 0},
        )
        shared = cvm.shared_vcpus[0]
        shared.hyp_write(machine.hart, "gpr_index", 10)
        shared.hyp_write(machine.hart, "gpr_value", 0xCAFE)
        shared.hyp_write(machine.hart, "sepc_advance", 4)
        old_pc = vcpu.pc
        reply = ws.enter_cvm(machine.hart, cvm, vcpu)
        assert reply["gpr_value"] == 0xCAFE
        assert vcpu.gprs["a0"] == 0xCAFE
        assert vcpu.pc == old_pc + 4

    def test_irq_injection_lands_in_hvip(self, env):
        machine, session, cvm, vcpu = env
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "wfi", "cause": 0})
        cvm.shared_vcpus[0].hyp_write(machine.hart, "pending_irq", 1 << 10)
        ws.enter_cvm(machine.hart, cvm, vcpu)
        assert vcpu.csrs["hvip"] & (1 << 10)

    def test_stale_reply_fields_cleared_between_exits(self, env):
        """An MMIO reply must not echo into a later wfi exit (TOCTOU)."""
        machine, session, cvm, vcpu = env
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        ws.exit_to_normal(
            machine.hart, cvm, vcpu,
            {"kind": "mmio_load", "cause": 21, "htval": 0x1000_0000,
             "htinst": 0x503, "gpr_index": 10, "gpr_value": 0},
        )
        shared = cvm.shared_vcpus[0]
        shared.hyp_write(machine.hart, "gpr_index", 10)
        shared.hyp_write(machine.hart, "gpr_value", 0xBAD)
        shared.hyp_write(machine.hart, "sepc_advance", 4)
        ws.enter_cvm(machine.hart, cvm, vcpu)
        # Next exit is a plain wfi; the SM must have scrubbed the slots.
        ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "wfi", "cause": 0})
        reply = ws.enter_cvm(machine.hart, cvm, vcpu)
        assert "gpr_value" not in reply
