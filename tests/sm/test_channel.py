"""SM-brokered inter-CVM channels (repro.sm.channel)."""

import pytest

from repro.errors import EcallError, SecurityViolation, TrapRaised
from repro.isa.traps import AccessType
from repro.mem.physmem import PAGE_SIZE
from repro.sm.channel import ChannelState
from repro.sm.secmem import OWNER_FREE

IMAGE = b"channel-test-guest" * 64
WINDOW = 4 * PAGE_SIZE
OFFSET = 0x200_0000  # window GPA offset, far from demand-allocated pages


def _two_cvms(machine):
    a = machine.launch_confidential_vm(image=IMAGE)
    b = machine.launch_confidential_vm(image=IMAGE)
    return a, b


def _open_channel(machine, a, b, size=WINDOW):
    monitor = machine.monitor
    wa = a.layout.dram_base + OFFSET
    wb = b.layout.dram_base + OFFSET
    channel_id = monitor.ecall_channel_create(
        a.cvm.cvm_id, wa, size, b.cvm.measurement
    )
    monitor.ecall_channel_connect(b.cvm.cvm_id, channel_id, wb, a.cvm.measurement)
    return channel_id, wa, wb


def _translate(machine, cvm, gpa):
    return machine.monitor.translator.gpa_to_pa(cvm.hgatp_root, gpa, AccessType.LOAD)[0]


class TestLifecycle:
    def test_identical_images_measure_identically(self, machine):
        a, b = _two_cvms(machine)
        assert a.cvm.measurement == b.cvm.measurement

    def test_create_maps_window_into_creator(self, machine):
        a, b = _two_cvms(machine)
        wa = a.layout.dram_base + OFFSET
        channel_id = machine.monitor.ecall_channel_create(
            a.cvm.cvm_id, wa, WINDOW, b.cvm.measurement
        )
        channel = machine.monitor.channels.channels[channel_id]
        assert channel.state is ChannelState.CREATED
        assert _translate(machine, a.cvm, wa) == channel.window_pa

    def test_connect_maps_same_frames_into_both(self, machine):
        a, b = _two_cvms(machine)
        channel_id, wa, wb = _open_channel(machine, a, b)
        channel = machine.monitor.channels.channels[channel_id]
        assert channel.state is ChannelState.CONNECTED
        for offset in range(0, WINDOW, PAGE_SIZE):
            pa_a = _translate(machine, a.cvm, wa + offset)
            pa_b = _translate(machine, b.cvm, wb + offset)
            assert pa_a == pa_b == channel.window_pa + offset

    def test_window_frames_owned_by_channel_not_cvms(self, machine):
        a, b = _two_cvms(machine)
        channel_id, _, _ = _open_channel(machine, a, b)
        channel = machine.monitor.channels.channels[channel_id]
        token = machine.monitor.channels.owner_token(channel_id)
        for offset in range(0, WINDOW, PAGE_SIZE):
            assert machine.monitor.pool.owner_of(channel.window_pa + offset) == token

    def test_data_written_by_one_readable_by_other(self, machine):
        a, b = _two_cvms(machine)
        channel_id, wa, wb = _open_channel(machine, a, b)
        pa = _translate(machine, a.cvm, wa)
        machine.dram.write(pa, b"cross-cvm-payload")
        assert machine.dram.read(_translate(machine, b.cvm, wb), 17) == b"cross-cvm-payload"

    def test_window_gpa_must_be_unmapped(self, machine):
        a, b = _two_cvms(machine)
        with pytest.raises(EcallError):
            machine.monitor.ecall_channel_create(
                a.cvm.cvm_id, a.layout.dram_base, WINDOW, b.cvm.measurement
            )

    def test_window_must_be_private_dram(self, machine):
        a, b = _two_cvms(machine)
        with pytest.raises(EcallError):
            machine.monitor.ecall_channel_create(
                a.cvm.cvm_id, a.layout.shared_base, WINDOW, b.cvm.measurement
            )

    def test_unfinalized_cvm_cannot_create(self, machine):
        a, b = _two_cvms(machine)
        raw_id = machine.monitor.ecall_create_cvm()
        with pytest.raises(ValueError):
            machine.monitor.ecall_channel_create(
                raw_id, machine.monitor.cvms[raw_id].layout.dram_base + OFFSET,
                WINDOW, b.cvm.measurement,
            )


class TestConnectGating:
    def test_wrong_peer_measurement_refused(self, machine):
        a, _ = _two_cvms(machine)
        other = machine.launch_confidential_vm(image=b"different-image" * 64)
        wa = a.layout.dram_base + OFFSET
        channel_id = machine.monitor.ecall_channel_create(
            a.cvm.cvm_id, wa, WINDOW, b"\xaa" * 32  # expects nobody real
        )
        with pytest.raises(SecurityViolation):
            machine.monitor.ecall_channel_connect(
                other.cvm.cvm_id, channel_id,
                other.layout.dram_base + OFFSET, a.cvm.measurement,
            )

    def test_wrong_creator_expectation_refused(self, machine):
        a, b = _two_cvms(machine)
        wa = a.layout.dram_base + OFFSET
        channel_id = machine.monitor.ecall_channel_create(
            a.cvm.cvm_id, wa, WINDOW, b.cvm.measurement
        )
        with pytest.raises(SecurityViolation):
            machine.monitor.ecall_channel_connect(
                b.cvm.cvm_id, channel_id,
                b.layout.dram_base + OFFSET, b"\xbb" * 32,
            )

    def test_third_cvm_cannot_join_connected_channel(self, machine):
        a, b = _two_cvms(machine)
        channel_id, _, _ = _open_channel(machine, a, b)
        third = machine.launch_confidential_vm(image=IMAGE)  # measurement matches!
        with pytest.raises(SecurityViolation):
            machine.monitor.ecall_channel_connect(
                third.cvm.cvm_id, channel_id,
                third.layout.dram_base + OFFSET, a.cvm.measurement,
            )

    def test_creator_cannot_connect_to_itself(self, machine):
        a, b = _two_cvms(machine)
        wa = a.layout.dram_base + OFFSET
        channel_id = machine.monitor.ecall_channel_create(
            a.cvm.cvm_id, wa, WINDOW, a.cvm.measurement
        )
        with pytest.raises(SecurityViolation):
            machine.monitor.ecall_channel_connect(
                a.cvm.cvm_id, channel_id, wa + WINDOW, a.cvm.measurement
            )


class TestNotify:
    def test_notify_raises_peer_vsei_and_wakes_scheduler(self, machine):
        a, b = _two_cvms(machine)
        channel_id, _, _ = _open_channel(machine, a, b)
        before = machine.hypervisor.doorbell_wakeups
        pending = machine.monitor.ecall_channel_notify(a.cvm.cvm_id, channel_id)
        assert pending == 1
        assert b.cvm.vcpus[0].csrs["hvip"] & (1 << 10)
        assert machine.hypervisor.doorbell_wakeups == before + 1

    def test_consume_doorbell_clears_pending(self, machine):
        a, b = _two_cvms(machine)
        channel_id, _, _ = _open_channel(machine, a, b)
        machine.monitor.ecall_channel_notify(a.cvm.cvm_id, channel_id)
        machine.monitor.ecall_channel_notify(a.cvm.cvm_id, channel_id)
        taken = machine.monitor.channels.consume_doorbell(b.cvm.cvm_id, channel_id)
        assert taken == 2
        assert machine.monitor.channels.consume_doorbell(b.cvm.cvm_id, channel_id) == 0

    def test_non_endpoint_cannot_notify(self, machine):
        a, b = _two_cvms(machine)
        channel_id, _, _ = _open_channel(machine, a, b)
        third = machine.launch_confidential_vm(image=IMAGE)
        with pytest.raises(SecurityViolation):
            machine.monitor.ecall_channel_notify(third.cvm.cvm_id, channel_id)

    def test_notify_before_connect_is_an_error(self, machine):
        a, b = _two_cvms(machine)
        wa = a.layout.dram_base + OFFSET
        channel_id = machine.monitor.ecall_channel_create(
            a.cvm.cvm_id, wa, WINDOW, b.cvm.measurement
        )
        with pytest.raises(EcallError):
            machine.monitor.ecall_channel_notify(a.cvm.cvm_id, channel_id)


class TestTeardown:
    def test_close_scrubs_window_and_frees_block(self, machine):
        a, b = _two_cvms(machine)
        channel_id, wa, wb = _open_channel(machine, a, b)
        channel = machine.monitor.channels.channels[channel_id]
        machine.dram.write(channel.window_pa, b"SECRET-PLAINTEXT" * 16)
        machine.monitor.ecall_channel_close(b.cvm.cvm_id, channel_id)
        assert channel.state is ChannelState.CLOSED
        assert machine.dram.read(channel.window_pa, WINDOW) == bytes(WINDOW)
        for offset in range(0, WINDOW, PAGE_SIZE):
            assert machine.monitor.pool.owner_of(channel.window_pa + offset) == OWNER_FREE

    def test_close_unmaps_both_endpoints(self, machine):
        a, b = _two_cvms(machine)
        channel_id, wa, wb = _open_channel(machine, a, b)
        machine.monitor.ecall_channel_close(a.cvm.cvm_id, channel_id)
        for cvm, gpa in ((a.cvm, wa), (b.cvm, wb)):
            with pytest.raises(TrapRaised):
                machine.monitor.translator.gpa_to_pa(cvm.hgatp_root, gpa, AccessType.LOAD)

    def test_double_close_is_an_error(self, machine):
        a, b = _two_cvms(machine)
        channel_id, _, _ = _open_channel(machine, a, b)
        machine.monitor.ecall_channel_close(a.cvm.cvm_id, channel_id)
        with pytest.raises(EcallError):
            machine.monitor.ecall_channel_close(b.cvm.cvm_id, channel_id)

    def test_destroying_either_endpoint_closes_the_channel(self, machine):
        a, b = _two_cvms(machine)
        channel_id, wa, wb = _open_channel(machine, a, b)
        channel = machine.monitor.channels.channels[channel_id]
        machine.dram.write(channel.window_pa, b"DOOMED")
        machine.monitor.ecall_destroy(a.cvm.cvm_id)
        assert channel.state is ChannelState.CLOSED
        assert machine.dram.read(channel.window_pa, WINDOW) == bytes(WINDOW)
        # The surviving endpoint no longer translates to the window.
        with pytest.raises(TrapRaised):
            machine.monitor.translator.gpa_to_pa(b.cvm.hgatp_root, wb, AccessType.LOAD)

    def test_guest_cannot_reclaim_window_frames(self, machine):
        """Ballooning the window GPA must not steal channel frames."""
        a, b = _two_cvms(machine)
        channel_id, wa, _ = _open_channel(machine, a, b)
        with pytest.raises(SecurityViolation):
            machine.monitor.ecall_reclaim_pages(a.cvm.cvm_id, 0, wa, 1)
        # The mapping (and the channel) survive the attempt.
        channel = machine.monitor.channels.channels[channel_id]
        assert channel.state is ChannelState.CONNECTED
        assert _translate(machine, a.cvm, wa) == channel.window_pa
