"""Hierarchical three-stage allocation (paper IV-D)."""

import pytest

from repro.cycles import Category, CycleLedger, DEFAULT_COSTS
from repro.sm.alloc import AllocStage, HierarchicalAllocator, PoolExhausted
from repro.sm.secmem import SECURE_BLOCK_SIZE, SecureMemoryPool

BASE = 0x9000_0000
PAGES_PER_BLOCK = SECURE_BLOCK_SIZE // 4096


@pytest.fixture
def pool():
    pool = SecureMemoryPool()
    pool.register_region(BASE, 2 * SECURE_BLOCK_SIZE)
    return pool


@pytest.fixture
def ledger():
    return CycleLedger()


@pytest.fixture
def allocator(pool, ledger):
    return HierarchicalAllocator(pool, ledger, DEFAULT_COSTS)


def test_first_allocation_is_stage_two(allocator):
    """An empty cache forces a block grab."""
    pa, stage = allocator.alloc_page(1, 0)
    assert stage is AllocStage.NEW_BLOCK
    assert pa is not None


def test_subsequent_allocations_hit_page_cache(allocator):
    allocator.alloc_page(1, 0)
    for _ in range(PAGES_PER_BLOCK - 1):
        _, stage = allocator.alloc_page(1, 0)
        assert stage is AllocStage.PAGE_CACHE


def test_cache_exhaustion_triggers_stage_two_again(allocator):
    for _ in range(PAGES_PER_BLOCK):
        allocator.alloc_page(1, 0)
    _, stage = allocator.alloc_page(1, 0)
    assert stage is AllocStage.NEW_BLOCK


def test_pool_exhaustion_raises(allocator):
    for _ in range(2 * PAGES_PER_BLOCK):
        allocator.alloc_page(1, 0)
    with pytest.raises(PoolExhausted):
        allocator.alloc_page(1, 0)


def test_per_vcpu_caches_are_independent(allocator, pool):
    """Each vCPU gets its own block (lock-free fast path, paper IV-D)."""
    pa0, stage0 = allocator.alloc_page(1, 0)
    pa1, stage1 = allocator.alloc_page(1, 1)
    assert stage0 is stage1 is AllocStage.NEW_BLOCK
    block_of = lambda pa: (pa - BASE) // SECURE_BLOCK_SIZE
    assert block_of(pa0) != block_of(pa1)
    assert allocator.cache_for(0).block is not allocator.cache_for(1).block


def test_allocated_pages_tagged_with_cvm(allocator, pool):
    pa, _ = allocator.alloc_page(7, 0)
    assert pool.owner_of(pa) == 7


def test_all_pages_unique(allocator):
    pages = set()
    for _ in range(2 * PAGES_PER_BLOCK):
        pa, _ = allocator.alloc_page(1, 0)
        assert pa not in pages
        pages.add(pa)


def test_stage_counters(allocator):
    for _ in range(PAGES_PER_BLOCK + 1):
        allocator.alloc_page(1, 0)
    counts = allocator.stage_counts
    assert counts[AllocStage.NEW_BLOCK] == 2
    assert counts[AllocStage.PAGE_CACHE] == PAGES_PER_BLOCK - 1


def test_stage_one_cheaper_than_stage_two(pool, ledger):
    allocator = HierarchicalAllocator(pool, ledger, DEFAULT_COSTS)
    with ledger.span() as stage2:
        allocator.alloc_page(1, 0)
    with ledger.span() as stage1:
        allocator.alloc_page(1, 0)
    assert stage1.cycles < stage2.cycles


def test_release_all_returns_cached_blocks(allocator):
    allocator.alloc_page(1, 0)
    allocator.alloc_page(1, 1)
    blocks = allocator.release_all(1)
    assert len(blocks) == 2


def test_alloc_charges_alloc_category(allocator, ledger):
    allocator.alloc_page(1, 0)
    assert ledger.by_category()[Category.ALLOC] > 0
