"""Secure memory pool: block division, circular list, ownership."""

import pytest

from repro.errors import SecurityViolation
from repro.mem.physmem import PAGE_SIZE
from repro.sm.secmem import (
    OWNER_FREE,
    SECURE_BLOCK_SIZE,
    SecureMemoryBlock,
    SecureMemoryPool,
)

BASE = 0x9000_0000


@pytest.fixture
def pool():
    pool = SecureMemoryPool()
    pool.register_region(BASE, 4 * SECURE_BLOCK_SIZE)
    return pool


class TestBlock:
    def test_page_count(self):
        block = SecureMemoryBlock(BASE, SECURE_BLOCK_SIZE)
        assert block.page_count == 64
        assert list(block.pages())[0] == BASE
        assert list(block.pages())[-1] == BASE + SECURE_BLOCK_SIZE - PAGE_SIZE

    def test_alignment_required(self):
        with pytest.raises(ValueError):
            SecureMemoryBlock(BASE + 1, SECURE_BLOCK_SIZE)


class TestRegistration:
    def test_default_block_size_is_256k(self):
        assert SECURE_BLOCK_SIZE == 256 * 1024

    def test_region_divided_into_blocks(self, pool):
        assert pool.free_blocks == 4

    def test_ragged_region_rejected(self):
        pool = SecureMemoryPool()
        with pytest.raises(ValueError):
            pool.register_region(BASE, SECURE_BLOCK_SIZE + PAGE_SIZE)

    def test_overlapping_region_rejected(self, pool):
        with pytest.raises(SecurityViolation):
            pool.register_region(BASE + SECURE_BLOCK_SIZE, 2 * SECURE_BLOCK_SIZE)

    def test_contains(self, pool):
        assert pool.contains(BASE)
        assert pool.contains(BASE + 4 * SECURE_BLOCK_SIZE - 1)
        assert not pool.contains(BASE + 4 * SECURE_BLOCK_SIZE)
        assert not pool.contains(BASE - 1)

    def test_custom_block_size(self):
        pool = SecureMemoryPool(block_size=64 * 1024)
        pool.register_region(BASE, 256 * 1024)
        assert pool.free_blocks == 4


class TestCircularList:
    def test_list_is_circular_and_ordered(self, pool):
        blocks = pool.free_list_blocks()
        assert [b.base for b in blocks] == [BASE + i * SECURE_BLOCK_SIZE for i in range(4)]
        assert blocks[0].prev is blocks[-1]
        assert blocks[-1].next is blocks[0]

    def test_alloc_pops_head_lowest_address(self, pool):
        block = pool.alloc_block(owner=1)
        assert block.base == BASE
        assert pool.free_blocks == 3
        assert pool.free_list_blocks()[0].base == BASE + SECURE_BLOCK_SIZE

    def test_alloc_until_empty(self, pool):
        for _ in range(4):
            assert pool.alloc_block(owner=1) is not None
        assert pool.alloc_block(owner=1) is None
        assert pool.free_blocks == 0

    def test_free_block_reinserts_ordered(self, pool):
        a = pool.alloc_block(owner=1)
        b = pool.alloc_block(owner=1)
        pool.free_block(b)
        pool.free_block(a)
        blocks = pool.free_list_blocks()
        assert [blk.base for blk in blocks] == [
            BASE + i * SECURE_BLOCK_SIZE for i in range(4)
        ]

    def test_new_region_blocks_join_ordered(self, pool):
        pool.register_region(BASE - 2 * SECURE_BLOCK_SIZE, 2 * SECURE_BLOCK_SIZE)
        head = pool.free_list_blocks()[0]
        assert head.base == BASE - 2 * SECURE_BLOCK_SIZE

    def test_single_block_list_self_linked(self):
        pool = SecureMemoryPool()
        pool.register_region(BASE, SECURE_BLOCK_SIZE)
        block = pool.free_list_blocks()[0]
        assert block.next is block
        assert block.prev is block
        taken = pool.alloc_block(owner=9)
        assert taken is block
        assert pool.free_list_blocks() == []


class TestOwnership:
    def test_fresh_pages_are_free(self, pool):
        assert pool.owner_of(BASE) == OWNER_FREE

    def test_alloc_tags_owner(self, pool):
        pool.alloc_block(owner=(3, 0))
        assert pool.owner_of(BASE) == (3, 0)

    def test_set_page_owner(self, pool):
        pool.set_page_owner(BASE, 42)
        assert pool.owner_of(BASE) == 42
        assert BASE in pool.pages_owned_by(42)

    def test_set_owner_outside_pool_rejected(self, pool):
        with pytest.raises(SecurityViolation):
            pool.set_page_owner(0x1000, 1)

    def test_non_pool_address_has_no_owner(self, pool):
        assert pool.owner_of(0x1000) is None

    def test_free_block_resets_owner(self, pool):
        block = pool.alloc_block(owner=7)
        pool.free_block(block)
        assert pool.owner_of(block.base) == OWNER_FREE
