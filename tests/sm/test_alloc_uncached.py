"""The no-page-cache allocator ablation path."""

import pytest

from repro.cycles import Category, CycleLedger, DEFAULT_COSTS
from repro.sm.alloc import AllocStage, HierarchicalAllocator, PoolExhausted
from repro.sm.secmem import SECURE_BLOCK_SIZE, SecureMemoryPool

BASE = 0x9000_0000


@pytest.fixture
def env():
    pool = SecureMemoryPool()
    pool.register_region(BASE, 2 * SECURE_BLOCK_SIZE)
    ledger = CycleLedger()
    allocator = HierarchicalAllocator(pool, ledger, DEFAULT_COSTS, use_page_cache=False)
    return pool, ledger, allocator


def test_every_allocation_is_stage_two(env):
    pool, ledger, allocator = env
    for _ in range(10):
        _pa, stage = allocator.alloc_page(1, 0)
        assert stage is AllocStage.NEW_BLOCK


def test_pages_unique_and_owned(env):
    pool, ledger, allocator = env
    seen = set()
    for _ in range(100):
        pa, _ = allocator.alloc_page(7, 0)
        assert pa not in seen
        seen.add(pa)
        assert pool.owner_of(pa) == 7


def test_every_allocation_pays_the_lock(env):
    pool, ledger, allocator = env
    allocator.alloc_page(1, 0)
    before = ledger.by_category()[Category.ALLOC]
    allocator.alloc_page(1, 0)
    delta = ledger.by_category()[Category.ALLOC] - before
    assert delta >= DEFAULT_COSTS.pool_lock_cost + DEFAULT_COSTS.block_unlink


def test_uncached_costs_more_than_cached_per_page():
    pool = SecureMemoryPool()
    pool.register_region(BASE, 2 * SECURE_BLOCK_SIZE)
    ledger = CycleLedger()
    cached = HierarchicalAllocator(pool, ledger, DEFAULT_COSTS, use_page_cache=True)
    cached.alloc_page(1, 0)  # absorb the stage-2 refill
    with ledger.span() as cached_span:
        cached.alloc_page(1, 0)

    pool2 = SecureMemoryPool()
    pool2.register_region(BASE, 2 * SECURE_BLOCK_SIZE)
    uncached = HierarchicalAllocator(pool2, ledger, DEFAULT_COSTS, use_page_cache=False)
    uncached.alloc_page(1, 0)
    with ledger.span() as uncached_span:
        uncached.alloc_page(1, 0)
    assert cached_span.cycles < uncached_span.cycles


def test_exhaustion_still_raises(env):
    pool, ledger, allocator = env
    pages = 2 * SECURE_BLOCK_SIZE // 4096
    for _ in range(pages):
        allocator.alloc_page(1, 0)
    with pytest.raises(PoolExhausted):
        allocator.alloc_page(1, 0)


def test_machine_level_plumbing():
    from repro import Machine, MachineConfig
    from repro.workloads.memstress import sequential_write_stress

    machine = Machine(MachineConfig(use_page_cache=False))
    session = machine.launch_confidential_vm(image=b"x")
    stages = []
    machine.fault_observer = lambda kind, stage, cycles: stages.append(stage)
    machine.run(session, sequential_write_stress(16))
    assert stages == [AllocStage.NEW_BLOCK] * 16
