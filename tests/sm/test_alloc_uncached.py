"""The no-page-cache allocator ablation path."""

import pytest

from repro.cycles import Category, CycleLedger, DEFAULT_COSTS
from repro.sm.alloc import AllocStage, HierarchicalAllocator, PoolExhausted
from repro.sm.secmem import SECURE_BLOCK_SIZE, SecureMemoryPool

BASE = 0x9000_0000


@pytest.fixture
def env():
    pool = SecureMemoryPool()
    pool.register_region(BASE, 2 * SECURE_BLOCK_SIZE)
    ledger = CycleLedger()
    allocator = HierarchicalAllocator(pool, ledger, DEFAULT_COSTS, use_page_cache=False)
    return pool, ledger, allocator


def test_every_allocation_is_stage_two(env):
    pool, ledger, allocator = env
    for _ in range(10):
        _pa, stage = allocator.alloc_page(1, 0)
        assert stage is AllocStage.NEW_BLOCK


def test_pages_unique_and_owned(env):
    pool, ledger, allocator = env
    seen = set()
    for _ in range(100):
        pa, _ = allocator.alloc_page(7, 0)
        assert pa not in seen
        seen.add(pa)
        assert pool.owner_of(pa) == 7


def test_every_allocation_pays_the_lock(env):
    pool, ledger, allocator = env
    allocator.alloc_page(1, 0)
    before = ledger.by_category()[Category.ALLOC]
    allocator.alloc_page(1, 0)
    delta = ledger.by_category()[Category.ALLOC] - before
    assert delta >= DEFAULT_COSTS.pool_lock_cost + DEFAULT_COSTS.block_unlink


def test_uncached_costs_more_than_cached_per_page():
    pool = SecureMemoryPool()
    pool.register_region(BASE, 2 * SECURE_BLOCK_SIZE)
    ledger = CycleLedger()
    cached = HierarchicalAllocator(pool, ledger, DEFAULT_COSTS, use_page_cache=True)
    cached.alloc_page(1, 0)  # absorb the stage-2 refill
    with ledger.span() as cached_span:
        cached.alloc_page(1, 0)

    pool2 = SecureMemoryPool()
    pool2.register_region(BASE, 2 * SECURE_BLOCK_SIZE)
    uncached = HierarchicalAllocator(pool2, ledger, DEFAULT_COSTS, use_page_cache=False)
    uncached.alloc_page(1, 0)
    with ledger.span() as uncached_span:
        uncached.alloc_page(1, 0)
    assert cached_span.cycles < uncached_span.cycles


def test_exhaustion_still_raises(env):
    pool, ledger, allocator = env
    pages = 2 * SECURE_BLOCK_SIZE // 4096
    for _ in range(pages):
        allocator.alloc_page(1, 0)
    with pytest.raises(PoolExhausted):
        allocator.alloc_page(1, 0)


def test_machine_level_plumbing():
    from repro import Machine, MachineConfig
    from repro.workloads.memstress import sequential_write_stress

    machine = Machine(MachineConfig(use_page_cache=False))
    session = machine.launch_confidential_vm(image=b"x")
    stages = []
    machine.fault_observer = lambda kind, stage, cycles: stages.append(stage)
    machine.run(session, sequential_write_stress(16))
    assert stages == [AllocStage.NEW_BLOCK] * 16


def test_release_all_returns_the_global_block(env):
    pool, ledger, allocator = env
    allocator.alloc_page(1, 0)
    assert pool.free_blocks == 1
    blocks = allocator.release_all(1)
    assert len(blocks) == 1
    for block in blocks:
        pool.free_block(block)
    assert pool.free_blocks == 2


def test_release_all_only_returns_the_owners_blocks(env):
    pool, ledger, allocator = env
    allocator.alloc_page(1, 0)
    assert allocator.release_all(2) == []  # foreign CVM: nothing to recycle
    # The allocator still works afterwards (stale reference was dropped).
    pa, _ = allocator.alloc_page(1, 0)
    assert pool.owner_of(pa) == 1


def test_destroy_recovers_blocks_without_page_cache():
    """Regression: teardown under the uncached ablation must return the
    global block, or every destroyed CVM leaks 256 KB of secure pool."""
    from repro import Machine, MachineConfig
    from repro.workloads.memstress import sequential_write_stress

    machine = Machine(MachineConfig(use_page_cache=False))
    free_before = machine.monitor.pool.free_blocks
    session = machine.launch_confidential_vm(image=b"u" * 4096)
    machine.run(session, sequential_write_stress(16))
    machine.monitor.ecall_destroy(session.cvm.cvm_id)
    # Data blocks return; only SM metadata blocks may stay consumed
    # (same tolerance as the cached-path destroy test).
    assert machine.monitor.pool.free_blocks >= free_before - 1
