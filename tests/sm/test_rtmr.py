"""Runtime measurement registers (RTMR-style guest-extended measurements)."""

import hashlib

import pytest

from repro.errors import EcallError


@pytest.fixture
def deployed(machine):
    return machine, machine.launch_confidential_vm(image=b"rtmr-guest" * 100)


def test_rtmrs_start_zero(deployed):
    machine, session = deployed
    assert session.cvm.rtmrs == [bytes(32)] * 4


def test_extend_follows_the_standard_formula(deployed):
    machine, session = deployed

    def workload(ctx):
        return ctx.extend_rtmr(1, b"boot-stage-2")

    value = machine.run(session, workload)["workload_result"]
    expected = hashlib.sha256(
        bytes(32) + hashlib.sha256(b"boot-stage-2").digest()
    ).digest()
    assert value == expected
    assert session.cvm.rtmrs[1] == expected


def test_extend_is_order_sensitive(machine):
    a = machine.launch_confidential_vm(image=b"g" * 64)
    b = machine.launch_confidential_vm(image=b"g" * 64)

    machine.run(a, lambda ctx: (ctx.extend_rtmr(0, b"x"), ctx.extend_rtmr(0, b"y")))
    machine.run(b, lambda ctx: (ctx.extend_rtmr(0, b"y"), ctx.extend_rtmr(0, b"x")))
    assert a.cvm.rtmrs[0] != b.cvm.rtmrs[0]


def test_registers_independent(deployed):
    machine, session = deployed
    machine.run(session, lambda ctx: ctx.extend_rtmr(2, b"data"))
    assert session.cvm.rtmrs[2] != bytes(32)
    assert session.cvm.rtmrs[0] == bytes(32)
    assert session.cvm.rtmrs[3] == bytes(32)


def test_invalid_index_and_size_rejected(deployed):
    machine, session = deployed

    def workload(ctx):
        with pytest.raises(EcallError):
            ctx.extend_rtmr(4, b"x")
        with pytest.raises(EcallError):
            ctx.extend_rtmr(0, b"x" * 5000)

    machine.run(session, workload)


def test_report_binds_rtmr_state(deployed):
    """Two reports straddling an extend differ in rtmr_digest, both verify."""
    machine, session = deployed

    def workload(ctx):
        before = ctx.attestation_report(b"n1")
        ctx.extend_rtmr(0, b"kernel-module.ko")
        after = ctx.attestation_report(b"n1")
        return before, after

    before, after = machine.run(session, workload)["workload_result"]
    assert before.rtmr_digest != after.rtmr_digest
    assert machine.monitor.attestation.verify_report(before)
    assert machine.monitor.attestation.verify_report(after)
    # The digest is replayable from the register values.
    assert after.rtmr_digest == hashlib.sha256(b"".join(session.cvm.rtmrs)).digest()


def test_forged_rtmr_digest_fails_verification(deployed):
    import dataclasses

    machine, session = deployed
    report = machine.run(
        session, lambda ctx: ctx.attestation_report(b"n")
    )["workload_result"]
    forged = dataclasses.replace(report, rtmr_digest=b"\xaa" * 32)
    assert not machine.monitor.attestation.verify_report(forged)


def test_rtmrs_survive_migration(machine):
    from repro import Machine, MachineConfig
    from repro.sm.migration import derive_migration_key

    session = machine.launch_confidential_vm(image=b"mig-rtmr" * 64)
    machine.run(session, lambda ctx: ctx.extend_rtmr(0, b"pre-migration-event"))
    rtmr_before = session.cvm.rtmrs[0]
    key = derive_migration_key(b"fleet", b"s", b"d")
    blob = machine.export_confidential_vm(session, key)
    destination = Machine(MachineConfig())
    migrated = destination.import_confidential_vm(blob, key)
    assert migrated.cvm.rtmrs[0] == rtmr_before
