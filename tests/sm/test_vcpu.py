"""Secure/shared vCPU structures and Check-after-Load (paper IV-B)."""

import pytest

from repro.cycles import CycleLedger, DEFAULT_COSTS
from repro.errors import SecurityViolation
from repro.isa.hart import Hart
from repro.mem.physmem import MemoryBus, PhysicalMemory
from repro.sm.vcpu import (
    GUEST_CSRS,
    SHARED_VCPU_FIELDS,
    CheckAfterLoad,
    SecureVcpu,
    SharedVcpu,
    VcpuState,
)

BASE = 0x8000_0000


@pytest.fixture
def bus():
    return MemoryBus(PhysicalMemory(BASE, 1 << 20))


@pytest.fixture
def shared(bus):
    return SharedVcpu(BASE + 0x1000, bus)


@pytest.fixture
def checker():
    return CheckAfterLoad(CycleLedger(), DEFAULT_COSTS)


class TestSecureVcpu:
    def test_initial_state(self):
        vcpu = SecureVcpu(0)
        assert vcpu.state is VcpuState.READY
        assert vcpu.pc == 0
        assert set(vcpu.csrs) == set(GUEST_CSRS)

    def test_save_restore_roundtrip(self):
        hart = Hart(0)
        hart.write_gpr("a0", 123)
        hart.csrs.write_raw("vsepc", 0x8000_4000)
        vcpu = SecureVcpu(0)
        vcpu.save_from(hart)
        hart.write_gpr("a0", 0)
        hart.csrs.write_raw("vsepc", 0)
        vcpu.restore_to(hart)
        assert hart.read_gpr("a0") == 123
        assert hart.csrs.read_raw("vsepc") == 0x8000_4000


class TestSharedVcpu:
    def test_sm_write_hyp_read(self, shared):
        hart = Hart(0)  # M mode: passes the empty PMP
        shared.sm_write("htval", 0xDEAD)
        assert shared.hyp_read(hart, "htval") == 0xDEAD

    def test_field_layout_is_disjoint(self, shared):
        for i, field in enumerate(SHARED_VCPU_FIELDS):
            shared.sm_write(field, i + 1)
        for i, field in enumerate(SHARED_VCPU_FIELDS):
            assert shared.sm_read(field) == i + 1

    def test_backed_by_real_memory(self, shared, bus):
        shared.sm_write("exit_cause", 21)
        raw = bus.dram.read_u64(BASE + 0x1000 + 8 * SHARED_VCPU_FIELDS["exit_cause"])
        assert raw == 21


class TestCheckAfterLoad:
    def _mmio_load_context(self, vcpu):
        vcpu.exit_context = {"kind": "mmio_load", "gpr_index": 10}

    def test_valid_mmio_load_reply(self, shared, checker):
        vcpu = SecureVcpu(0)
        self._mmio_load_context(vcpu)
        shared.sm_write("gpr_index", 10)
        shared.sm_write("gpr_value", 0x42)
        shared.sm_write("sepc_advance", 4)
        reply = checker.validate_reply(vcpu, shared)
        assert reply["gpr_value"] == 0x42
        assert reply["sepc_advance"] == 4

    def test_redirected_gpr_rejected(self, shared, checker):
        """TOCTOU: the hypervisor must not retarget the load result."""
        vcpu = SecureVcpu(0)
        self._mmio_load_context(vcpu)
        shared.sm_write("gpr_index", 2)  # sp! a classic hijack target
        shared.sm_write("gpr_value", 0x41414141)
        shared.sm_write("sepc_advance", 4)
        with pytest.raises(SecurityViolation):
            checker.validate_reply(vcpu, shared)

    def test_gpr_result_on_non_mmio_exit_rejected(self, shared, checker):
        vcpu = SecureVcpu(0)
        vcpu.exit_context = {"kind": "timer"}
        shared.sm_write("gpr_value", 0x1337)
        with pytest.raises(SecurityViolation):
            checker.validate_reply(vcpu, shared)

    def test_bad_sepc_advance_rejected(self, shared, checker):
        vcpu = SecureVcpu(0)
        self._mmio_load_context(vcpu)
        shared.sm_write("gpr_index", 10)
        shared.sm_write("sepc_advance", 8)  # would skip an extra instruction
        with pytest.raises(SecurityViolation):
            checker.validate_reply(vcpu, shared)

    def test_sepc_advance_on_non_mmio_rejected(self, shared, checker):
        vcpu = SecureVcpu(0)
        vcpu.exit_context = {"kind": "wfi"}
        shared.sm_write("sepc_advance", 4)
        with pytest.raises(SecurityViolation):
            checker.validate_reply(vcpu, shared)

    def test_mmio_store_accepts_advance_only(self, shared, checker):
        vcpu = SecureVcpu(0)
        vcpu.exit_context = {"kind": "mmio_store"}
        shared.sm_write("sepc_advance", 2)  # compressed store
        reply = checker.validate_reply(vcpu, shared)
        assert reply["sepc_advance"] == 2

    def test_vs_interrupt_injection_allowed(self, shared, checker):
        vcpu = SecureVcpu(0)
        vcpu.exit_context = {"kind": "wfi"}
        shared.sm_write("pending_irq", 1 << 10)  # VSEI
        reply = checker.validate_reply(vcpu, shared)
        assert reply["pending_irq"] == 1 << 10

    def test_machine_interrupt_injection_rejected(self, shared, checker):
        vcpu = SecureVcpu(0)
        vcpu.exit_context = {"kind": "wfi"}
        shared.sm_write("pending_irq", 1 << 7)  # MTI: never injectable
        with pytest.raises(SecurityViolation):
            checker.validate_reply(vcpu, shared)

    def test_supervisor_interrupt_injection_rejected(self, shared, checker):
        vcpu = SecureVcpu(0)
        vcpu.exit_context = {"kind": "wfi"}
        shared.sm_write("pending_irq", 1 << 9)  # SEI (host's own level)
        with pytest.raises(SecurityViolation):
            checker.validate_reply(vcpu, shared)

    def test_validation_charges_cycles(self, shared):
        ledger = CycleLedger()
        checker = CheckAfterLoad(ledger, DEFAULT_COSTS)
        vcpu = SecureVcpu(0)
        vcpu.exit_context = {"kind": "timer"}
        checker.validate_reply(vcpu, shared)
        assert ledger.total >= 4 * DEFAULT_COSTS.validate_field
