"""Cycle-exactness goldens: the guard-rail for all wall-clock perf work.

The repository's one hard performance invariant is that optimizations may
change how fast *Python* executes the simulation, but never what the
model charges: simulated cycle totals and per-category breakdowns must be
bit-identical before and after any fast-path change.

These tests pin that invariant.  Each golden workload runs with fixed
inputs (everything in the pipeline is deterministic) and its final
``ledger.total`` plus full ``by_category()`` breakdown are compared
against ``goldens/cycle_exact.json``, which was recorded from the
pre-optimization tree.  If a test here fails, the change under review
altered the *performance model* -- that is a model change requiring its
own justification (and a deliberate re-record), never a side effect an
optimization is allowed to have.

Re-record (deliberately!) with::

    PYTHONPATH=src python tests/test_cycle_exact.py --record
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

GOLDEN_PATH = pathlib.Path(__file__).parent / "goldens" / "cycle_exact.json"


def _snapshot(machine):
    """(total, breakdown-by-name) of a machine's ledger."""
    return (
        machine.ledger.total,
        {cat.name: v for cat, v in machine.ledger.by_category().items()},
    )


def _memstress(kind: str, pages: int):
    from repro.machine import Machine, MachineConfig
    from repro.workloads.memstress import sequential_write_stress

    machine = Machine(MachineConfig())
    if kind == "cvm":
        session = machine.launch_confidential_vm(image=b"perf" * 100)
    else:
        session = machine.launch_normal_vm()
    machine.run(session, sequential_write_stress(pages))
    return _snapshot(machine)


def _run_memstress_cvm():
    return _memstress("cvm", 512)


def _run_memstress_normal():
    return _memstress("normal", 256)


def _run_pingpong():
    from repro.bench.perf import run_pingpong

    run = run_pingpong(rounds=8, message_size=256)
    return run.total_cycles, run.breakdown


def _run_switch_path():
    from repro.bench.perf import run_switch_path

    run = run_switch_path(iterations=50)
    return run.total_cycles, run.breakdown


#: The golden workloads: small enough for tier-1, wide enough to cover
#: the whole guest memory pipeline (SM fault path, KVM fault path,
#: channel IPC + scheduler, world-switch loop).
GOLDEN_WORKLOADS = {
    "memstress_cvm_512": _run_memstress_cvm,
    "memstress_normal_256": _run_memstress_normal,
    "pingpong_8x256": _run_pingpong,
    "switch_path_short_50": _run_switch_path,
}


@pytest.mark.parametrize("name", sorted(GOLDEN_WORKLOADS))
def test_cycle_exact(name):
    goldens = json.loads(GOLDEN_PATH.read_text())
    assert name in goldens, (
        f"no golden recorded for {name}; run "
        "`PYTHONPATH=src python tests/test_cycle_exact.py --record`"
    )
    total, breakdown = GOLDEN_WORKLOADS[name]()
    golden = goldens[name]
    assert total == golden["total"], (
        f"{name}: simulated cycle total drifted "
        f"{total - golden['total']:+d} from the recorded model"
    )
    assert breakdown == golden["breakdown"], (
        f"{name}: per-category breakdown drifted from the recorded model"
    )


def _record() -> None:
    goldens = {}
    for name, runner in sorted(GOLDEN_WORKLOADS.items()):
        total, breakdown = runner()
        goldens[name] = {"total": total, "breakdown": breakdown}
        print(f"recorded {name}: total={total}")
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--record" in sys.argv:
        _record()
    else:
        print(__doc__)
        sys.exit(2)
