"""The experiment harness itself: formatting, paper data, runner contracts."""

import pytest

from repro.bench import paper_data
from repro.bench.tables import format_comparison_table, human_bytes, ratio


class TestTables:
    def test_basic_table(self):
        text = format_comparison_table(
            "title",
            [("row1", {"a": 1.5, "b": 2})],
            [("a", "col-a", ".1f"), ("b", "col-b", "d")],
        )
        assert "title" in text
        assert "col-a" in text
        assert "1.5" in text

    def test_missing_values_render_as_dash(self):
        text = format_comparison_table(
            "t", [("row", {"a": None})], [("a", "A", ".1f"), ("b", "B", "d")]
        )
        assert "-" in text

    def test_ratio(self):
        assert ratio(50, 100) == 0.5
        assert ratio(None, 100) is None
        assert ratio(50, 0) is None

    def test_human_bytes(self):
        assert human_bytes(512) == "512B"
        assert human_bytes(8 << 10) == "8KB"
        assert human_bytes(4 << 20) == "4MB"
        assert human_bytes(1 << 30) == "1GB"


class TestPaperData:
    def test_improvements_consistent_with_cycle_counts(self):
        v = paper_data.VCPU_SWITCH
        computed = 100 * (1 - v["entry_with_shared"] / v["entry_without_shared"])
        assert abs(computed - v["entry_improvement_pct"]) < 0.1
        s = paper_data.SWITCH_PATH
        computed = 100 * (1 - s["exit_short_path"] / s["exit_long_path"])
        assert abs(computed - s["exit_improvement_pct"]) < 0.35

    def test_rv8_average_matches_rows(self):
        rows = paper_data.RV8_TABLE_I.values()
        average = sum(r["overhead_pct"] for r in rows) / len(paper_data.RV8_TABLE_I)
        assert abs(average - paper_data.RV8_AVERAGE_OVERHEAD_PCT) < 0.03

    def test_coremark_drop_consistent(self):
        c = paper_data.COREMARK
        computed = 100 * (1 - c["cvm_score"] / c["normal_score"])
        assert abs(computed - c["overhead_pct"]) < 0.1

    def test_page_fault_average_plausible(self):
        p = paper_data.PAGE_FAULT
        # The reported average must sit between stages 1 and 2 (cache hits
        # dominate) -- the internal consistency the paper itself argues.
        assert p["cvm_stage1"] < p["cvm_average"] < p["cvm_stage2"]

    def test_iozone_grid_shape(self):
        assert len(paper_data.IOZONE["file_sizes"]) == 7
        assert paper_data.IOZONE["record_sizes"] == [8 << 10, 128 << 10, 512 << 10]

    def test_platform_constants(self):
        assert paper_data.PLATFORM["clock_hz"] == 100_000_000
        assert paper_data.PLATFORM["memory_bytes"] == 1 << 30


class TestRunnerContracts:
    def test_micro_runners_return_required_keys(self):
        from repro.bench.microbench import run_vcpu_switch_experiment

        result = run_vcpu_switch_experiment(iterations=3)
        for key in ("entry_with_shared", "exit_with_shared",
                    "entry_improvement_pct", "exit_improvement_pct"):
            assert key in result

    def test_rv8_runner_subset(self):
        from repro.bench.macro import run_rv8_experiment

        result = run_rv8_experiment(scale=0.001, benchmarks=["qsort"])
        assert set(result["benchmarks"]) == {"qsort"}
        assert "average_overhead_pct" in result
