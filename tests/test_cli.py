"""CLI smoke tests (python -m repro)."""

import pytest

from repro.__main__ import main


def test_stats_command(capsys):
    assert main(["stats"]) == 0
    out = capsys.readouterr().out
    assert "total cycles" in out
    assert "CVM 1" in out


def test_attack_command_all_blocked(capsys):
    assert main(["attack"]) == 0
    out = capsys.readouterr().out
    assert "SUCCEEDED" not in out
    assert out.count("blocked") == 5


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "report verified: True" in out


def test_experiments_subset(capsys):
    assert main(["experiments", "--only", "E1"]) == 0
    out = capsys.readouterr().out
    assert "E1 shared vCPU" in out
    assert "E3" not in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])
