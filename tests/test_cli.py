"""CLI smoke tests (python -m repro)."""

import pytest

from repro.__main__ import main


def test_stats_command(capsys):
    assert main(["stats"]) == 0
    out = capsys.readouterr().out
    assert "total cycles" in out
    assert "CVM 1" in out


def test_attack_command_all_blocked(capsys):
    assert main(["attack"]) == 0
    out = capsys.readouterr().out
    assert "SUCCEEDED" not in out
    assert out.count("blocked") == 5


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "report verified: True" in out


def test_experiments_subset(capsys):
    assert main(["experiments", "--only", "E1"]) == 0
    out = capsys.readouterr().out
    assert "E1 shared vCPU" in out
    assert "E3" not in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_faults_seams_subset(capsys):
    assert main(["faults", "--seeds", "1", "--seams", "channel"]) == 0
    assert "campaign:" in capsys.readouterr().out


def test_faults_unknown_seam_rejected(capsys):
    assert main(["faults", "--seeds", "1", "--seams", "bogus"]) == 2
    assert "unknown fault seam" in capsys.readouterr().out


def test_fleet_smoke(capsys):
    assert main(["fleet", "--hosts", "2", "--cvms", "4", "--seeds", "1",
                 "--epochs", "4", "--rate", "2", "--min-migrations", "2"]) == 0
    out = capsys.readouterr().out
    assert "fleet campaign: 1 seeds, 0 failing" in out
    assert "violations=0" in out


def test_fleet_seed_replay_clean(capsys):
    assert main(["fleet", "--hosts", "2", "--cvms", "4", "--seed", "0",
                 "--epochs", "3", "--rate", "1", "--seams", "none",
                 "--min-migrations", "1", "-v"]) == 0
    out = capsys.readouterr().out
    assert "plan:" in out
    assert "all attestation-checked: True" in out


def test_fleet_min_migrations_gate(capsys):
    # Epochs 0-1 never migrate, so a 2-epoch run cannot reach the floor.
    assert main(["fleet", "--hosts", "2", "--cvms", "4", "--seeds", "1",
                 "--epochs", "2", "--rate", "2", "--seams", "none",
                 "--min-migrations", "1"]) == 1
    assert "TOO FEW MIGRATIONS" in capsys.readouterr().out


def test_fleet_ablation_table(capsys, monkeypatch):
    # The default grid is acceptance-sized; patch in a tiny one.
    import repro.fleet

    real_ablation = repro.fleet.run_fleet_ablation

    def tiny_grid():
        return real_ablation(rates=(1,), sizes=((2, 4),), epochs=3)

    monkeypatch.setattr(repro.fleet, "run_fleet_ablation", tiny_grid)
    assert main(["fleet", "--ablate"]) == 0
    out = capsys.readouterr().out
    assert "downtime mean" in out
    assert "    2     4     1" in out


def test_virtio_batch_smoke(capsys):
    assert main(["virtio-batch", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "iozone" in out and "redis_batch" in out and "doorbells" in out
    assert "FAIL" not in out
