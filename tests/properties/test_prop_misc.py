"""Property-based tests: physmem, TLB, RESP codec, SWIOTLB, measurement."""

from hypothesis import given, settings, strategies as st

from repro.cycles import CycleLedger, DEFAULT_COSTS
from repro.guest.swiotlb import Swiotlb
from repro.mem.physmem import PAGE_SIZE, PhysicalMemory
from repro.mem.tlb import Tlb
from repro.sm.attestation import MeasurementLog
from repro.workloads.redis import resp_decode_command, resp_encode_command

BASE = 0x8000_0000


class TestPhysmemProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 20) - 256),
                st.binary(min_size=1, max_size=256),
            ),
            max_size=16,
        ),
        probe=st.integers(min_value=0, max_value=(1 << 20) - 64),
    )
    def test_last_write_wins(self, writes, probe):
        """Memory behaves like a flat byte array under arbitrary writes."""
        dram = PhysicalMemory(BASE, 1 << 20)
        shadow = bytearray(1 << 20)
        for offset, data in writes:
            dram.write(BASE + offset, data)
            shadow[offset : offset + len(data)] = data
        assert dram.read(BASE + probe, 64) == bytes(shadow[probe : probe + 64])

    @settings(max_examples=40, deadline=None)
    @given(value=st.integers(min_value=0, max_value=(1 << 64) - 1),
           slot=st.integers(min_value=0, max_value=1000))
    def test_u64_roundtrip(self, value, slot):
        dram = PhysicalMemory(BASE, 1 << 20)
        dram.write_u64(BASE + slot * 8, value)
        assert dram.read_u64(BASE + slot * 8) == value


class TestTlbProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        inserts=st.lists(
            st.tuples(st.integers(min_value=1, max_value=3),
                      st.integers(min_value=0, max_value=100),
                      st.integers(min_value=0, max_value=100)),
            max_size=40,
        )
    )
    def test_capacity_never_exceeded_and_lookup_agrees(self, inserts):
        tlb = Tlb(capacity=8)
        shadow = {}
        for vmid, vpage, ppage in inserts:
            tlb.insert(vmid, vpage, ppage, 0b111)
            shadow[(vmid, vpage)] = ppage
            assert len(tlb) <= 8
        for (vmid, vpage), ppage in shadow.items():
            hit = tlb.lookup(vmid, vpage)
            if hit is not None:  # may have been evicted, never wrong
                assert hit[0] == ppage


class TestRespProperties:
    command_parts = st.lists(
        st.binary(min_size=0, max_size=32).filter(lambda b: b"\r\n" not in b),
        min_size=1,
        max_size=8,
    )

    @settings(max_examples=80, deadline=None)
    @given(parts=command_parts)
    def test_encode_decode_roundtrip(self, parts):
        assert resp_decode_command(resp_encode_command(parts)) == parts

    @settings(max_examples=40, deadline=None)
    @given(parts=command_parts)
    def test_encoding_is_parseable_framing(self, parts):
        encoded = resp_encode_command(parts)
        assert encoded.startswith(b"*%d\r\n" % len(parts))
        assert encoded.endswith(b"\r\n")


class TestSwiotlbProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("map"), st.integers(min_value=1, max_value=16 * 1024)),
                st.tuples(st.just("unmap"), st.integers(min_value=0, max_value=31)),
            ),
            max_size=40,
        )
    )
    def test_mappings_disjoint_and_slots_conserved(self, ops):
        from repro.errors import MemoryError_

        swiotlb = Swiotlb(1 << 38, 128 * 1024, CycleLedger(), DEFAULT_COSTS)
        live = {}  # gpa -> length
        for op in ops:
            if op[0] == "map":
                try:
                    gpa = swiotlb.map_single(op[1])
                except MemoryError_:
                    continue
                for other, other_len in live.items():
                    assert gpa + op[1] <= other or other + other_len <= gpa
                live[gpa] = op[1]
            elif live:
                key = sorted(live)[op[1] % len(live)]
                swiotlb.unmap_single(key)
                del live[key]
        used = sum(-(-length // 2048) for length in live.values())
        assert swiotlb.free_slots == 64 - used


class TestMeasurementProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(st.text(max_size=8), st.binary(max_size=64)),
            max_size=8,
        )
    )
    def test_measurement_deterministic_and_injective_ish(self, entries):
        a, b = MeasurementLog(), MeasurementLog()
        for label, data in entries:
            a.extend(label, data)
            b.extend(label, data)
        assert a.finalize() == b.finalize()
        # Appending anything changes the digest.
        c = MeasurementLog()
        for label, data in entries:
            c.extend(label, data)
        c.extend("extra", b"x")
        assert c.finalize() != a.finalize()
