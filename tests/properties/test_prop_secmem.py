"""Property-based tests: secure pool list and allocator invariants."""

from hypothesis import given, settings, strategies as st

from repro.cycles import CycleLedger, DEFAULT_COSTS
from repro.mem.physmem import PAGE_SIZE
from repro.sm.alloc import HierarchicalAllocator, PoolExhausted
from repro.sm.secmem import SECURE_BLOCK_SIZE, SecureMemoryPool

BASE = 0x9000_0000


def _list_is_sound(pool):
    """Circular, doubly-linked, address-ordered, count-consistent."""
    blocks = pool.free_list_blocks()
    assert len(blocks) == pool.free_blocks
    if not blocks:
        return
    for i, block in enumerate(blocks):
        assert block.next.prev is block
        assert block.prev.next is block
        if i + 1 < len(blocks):
            assert block.base < blocks[i + 1].base
    assert blocks[-1].next is blocks[0]


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.just(("alloc",)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=31)),
        ),
        max_size=48,
    )
)
def test_circular_list_invariants_under_churn(ops):
    pool = SecureMemoryPool()
    pool.register_region(BASE, 8 * SECURE_BLOCK_SIZE)
    held = []
    for op in ops:
        if op[0] == "alloc":
            block = pool.alloc_block(owner=1)
            if block is not None:
                held.append(block)
        elif held:
            pool.free_block(held.pop(op[1] % len(held)))
        _list_is_sound(pool)
        # Conservation: held + free == registered.
        assert len(held) + pool.free_blocks == 8


@settings(max_examples=30, deadline=None)
@given(
    vcpu_requests=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.integers(min_value=1, max_value=40)),
        min_size=1,
        max_size=8,
    )
)
def test_hierarchical_allocator_never_double_allocates(vcpu_requests):
    pool = SecureMemoryPool()
    pool.register_region(BASE, 8 * SECURE_BLOCK_SIZE)
    allocator = HierarchicalAllocator(pool, CycleLedger(), DEFAULT_COSTS)
    seen = set()
    for vcpu_id, count in vcpu_requests:
        for _ in range(count):
            try:
                pa, _stage = allocator.alloc_page(1, vcpu_id)
            except PoolExhausted:
                return
            assert pa not in seen
            assert pa % PAGE_SIZE == 0
            assert pool.contains(pa, PAGE_SIZE)
            seen.add(pa)


@settings(max_examples=30, deadline=None)
@given(regions=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4))
def test_multi_region_registration_keeps_order(regions):
    pool = SecureMemoryPool()
    base = BASE
    gaps = []
    for blocks in regions:
        pool.register_region(base, blocks * SECURE_BLOCK_SIZE)
        gaps.append(base)
        base += (blocks + 2) * SECURE_BLOCK_SIZE  # leave holes between regions
    _list_is_sound(pool)
    listed = [b.base for b in pool.free_list_blocks()]
    assert listed == sorted(listed)
