"""Property-based tests: page-table map/walk/unmap invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.pagetable import PTE_R, PTE_W, PTE_X, Sv39, Sv39x4
from repro.mem.physmem import PAGE_SIZE, PhysicalMemory

BASE = 0x8000_0000


class Raw:
    def __init__(self, dram):
        self.dram = dram

    def read_u64(self, addr):
        return self.dram.read_u64(addr)

    def write_u64(self, addr, value):
        self.dram.write_u64(addr, value)


def _env(scheme):
    dram = PhysicalMemory(BASE, 64 << 20)
    root = BASE
    dram.zero_range(root, scheme.root_size)
    cursor = [BASE + (1 << 20)]

    def alloc():
        pa = cursor[0]
        cursor[0] += PAGE_SIZE
        dram.zero_range(pa, PAGE_SIZE)
        return pa

    return dram, Raw(dram), root, alloc


va_pages_39 = st.integers(min_value=0, max_value=(1 << 27) - 1)
va_pages_41 = st.integers(min_value=0, max_value=(1 << 29) - 1)
pa_pages = st.integers(min_value=1 << 20, max_value=(1 << 20) + 4096)


@settings(max_examples=50, deadline=None)
@given(mapping=st.dictionaries(va_pages_41, pa_pages, min_size=1, max_size=24))
def test_walk_returns_exactly_what_was_mapped(mapping):
    scheme = Sv39x4()
    dram, acc, root, alloc = _env(scheme)
    for va_page, pa_page in mapping.items():
        scheme.map(acc, root, va_page << 12, BASE + (pa_page << 12) - BASE + 0x200_0000,
                   PTE_R | PTE_W, alloc)
    for va_page, pa_page in mapping.items():
        result = scheme.walk(acc, root, va_page << 12)
        assert result is not None
        assert result.pa == BASE + (pa_page << 12) - BASE + 0x200_0000
    leaves = dict(
        (va >> 12, pa) for va, pa, _f, _l in scheme.iter_leaves(acc, root)
    )
    assert set(leaves) == set(mapping)


@settings(max_examples=50, deadline=None)
@given(
    va_pages=st.sets(va_pages_39, min_size=2, max_size=16),
    data=st.data(),
)
def test_unmap_removes_only_the_target(va_pages, data):
    scheme = Sv39()
    dram, acc, root, alloc = _env(scheme)
    va_pages = sorted(va_pages)
    for i, va_page in enumerate(va_pages):
        scheme.map(acc, root, va_page << 12, BASE + 0x200_0000 + i * PAGE_SIZE,
                   PTE_R, alloc)
    victim = data.draw(st.sampled_from(va_pages))
    scheme.unmap(acc, root, victim << 12)
    assert scheme.walk(acc, root, victim << 12) is None
    for va_page in va_pages:
        if va_page != victim:
            assert scheme.walk(acc, root, va_page << 12) is not None


@settings(max_examples=50, deadline=None)
@given(va_page=va_pages_39, offset=st.integers(min_value=0, max_value=PAGE_SIZE - 1))
def test_offset_preserved_through_translation(va_page, offset):
    scheme = Sv39()
    dram, acc, root, alloc = _env(scheme)
    scheme.map(acc, root, va_page << 12, BASE + 0x200_0000, PTE_R, alloc)
    result = scheme.walk(acc, root, (va_page << 12) | offset)
    assert result.pa == BASE + 0x200_0000 + offset


@settings(max_examples=30, deadline=None)
@given(va_pages=st.sets(va_pages_41, min_size=1, max_size=16))
def test_tables_and_leaves_never_alias(va_pages):
    """No leaf target is also used as a table page."""
    scheme = Sv39x4()
    dram, acc, root, alloc = _env(scheme)
    for i, va_page in enumerate(sorted(va_pages)):
        scheme.map(acc, root, va_page << 12, BASE + 0x300_0000 + i * PAGE_SIZE,
                   PTE_R | PTE_X, alloc)
    tables = set(scheme.iter_tables(acc, root))
    leaves = {pa for _va, pa, _f, _l in scheme.iter_leaves(acc, root)}
    assert not tables & leaves
