"""Property-based tests: PMP matching and checking invariants."""

from hypothesis import given, strategies as st

from repro.isa.pmp import PmpAddressMode, PmpEntry, PmpUnit
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import AccessType

addresses = st.integers(min_value=0, max_value=(1 << 34) - 1)
sizes = st.integers(min_value=1, max_value=1 << 16)
access_types = st.sampled_from(list(AccessType))
sub_m_modes = st.sampled_from(
    [PrivilegeMode.U, PrivilegeMode.HS, PrivilegeMode.VS, PrivilegeMode.VU]
)


def tor(base, size, **perms):
    return PmpEntry(mode=PmpAddressMode.TOR, base=base, size=size, **perms)


@given(base=addresses, size=sizes, addr=addresses, access_size=sizes)
def test_match_classification_is_consistent(base, size, addr, access_size):
    """'full' iff contained, 'none' iff disjoint, 'partial' otherwise."""
    entry = tor(base & ~7, max(size & ~7, 8))
    verdict = entry.matches(addr, access_size)
    contained = entry.base <= addr and addr + access_size <= entry.end
    disjoint = addr + access_size <= entry.base or addr >= entry.end
    if contained:
        assert verdict == "full"
    elif disjoint:
        assert verdict == "none"
    else:
        assert verdict == "partial"


@given(addr=addresses, size=sizes, access=access_types, mode=sub_m_modes)
def test_no_entries_never_denies(addr, size, access, mode):
    assert PmpUnit().check(addr, size, access, mode)


@given(addr=addresses, size=sizes, access=access_types, mode=sub_m_modes,
       base=addresses, region=sizes)
def test_deny_entry_denies_everything_it_covers(addr, size, access, mode, base, region):
    """A no-permission entry denies every sub-M access it fully matches."""
    unit = PmpUnit()
    entry = tor(base & ~7, max(region & ~7, 8))
    unit.set_entry(0, entry)
    if entry.matches(addr, size) == "full":
        assert not unit.check(addr, size, access, mode)


@given(addr=addresses, size=sizes, access=access_types, mode=sub_m_modes)
def test_rwx_background_allows_all(addr, size, access, mode):
    unit = PmpUnit()
    unit.set_entry(
        15, tor(0, 1 << 34, readable=True, writable=True, executable=True)
    )
    assert unit.check(addr, min(size, (1 << 34) - addr), access, mode)


@given(addr=addresses, size=sizes, access=access_types)
def test_m_mode_never_denied_by_unlocked_entries(addr, size, access):
    unit = PmpUnit()
    unit.set_entry(0, tor(0, 1 << 34))  # deny-all, unlocked
    assert unit.check(addr, min(size, (1 << 34) - addr), access, PrivilegeMode.M)


@given(
    entries=st.lists(
        st.tuples(addresses, sizes, st.booleans(), st.booleans(), st.booleans()),
        min_size=1,
        max_size=8,
    ),
    addr=addresses,
    access=access_types,
    mode=sub_m_modes,
)
def test_priority_first_full_match_decides(entries, addr, access, mode):
    """The unit's verdict equals the first fully-matching entry's verdict."""
    unit = PmpUnit()
    built = []
    for i, (base, size, r, w, x) in enumerate(entries):
        entry = tor(base & ~7, max(size & ~7, 8), readable=r, writable=w, executable=x)
        unit.set_entry(i, entry)
        built.append(entry)
    verdict = unit.check(addr, 8, access, mode)
    for entry in built:
        match = entry.matches(addr, 8)
        if match == "partial":
            assert verdict is False
            return
        if match == "full":
            assert verdict == entry.permits(access)
            return
    assert verdict is False  # implemented entries, no match, sub-M access
