"""Property-based tests: frame allocator conservation and disjointness."""

from hypothesis import given, settings, strategies as st

from repro.errors import MemoryError_
from repro.mem.frames import FrameAllocator
from repro.mem.physmem import PAGE_SIZE

BASE = 0x8000_0000
TOTAL = 4 << 20


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=16)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=63)),
        ),
        max_size=64,
    )
)
def test_alloc_free_conservation_and_disjointness(ops):
    """Live allocations never overlap; free_bytes is always conserved."""
    alloc = FrameAllocator(BASE, TOTAL)
    live: list[tuple[int, int]] = []
    for op, arg in ops:
        if op == "alloc":
            size = arg * PAGE_SIZE
            try:
                addr = alloc.alloc(size=size)
            except MemoryError_:
                continue
            for other_addr, other_size in live:
                assert addr + size <= other_addr or other_addr + other_size <= addr
            assert BASE <= addr and addr + size <= BASE + TOTAL
            live.append((addr, size))
        elif live:
            addr, size = live.pop(arg % len(live))
            alloc.free(addr, size)
        assert alloc.free_bytes() == TOTAL - sum(s for _, s in live)


@settings(max_examples=40, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=32))
def test_free_everything_restores_full_capacity(sizes):
    alloc = FrameAllocator(BASE, TOTAL)
    live = []
    for pages in sizes:
        try:
            live.append((alloc.alloc(size=pages * PAGE_SIZE), pages * PAGE_SIZE))
        except MemoryError_:
            break
    for addr, size in live:
        alloc.free(addr, size)
    # Full coalescing: one max-size allocation must succeed again.
    assert alloc.alloc(size=TOTAL) == BASE


@settings(max_examples=40, deadline=None)
@given(align_pow=st.integers(min_value=0, max_value=6), pre=st.integers(min_value=0, max_value=3))
def test_alignment_always_honoured(align_pow, pre):
    alloc = FrameAllocator(BASE, TOTAL)
    for _ in range(pre):
        alloc.alloc()
    align = PAGE_SIZE << align_pow
    addr = alloc.alloc(size=PAGE_SIZE, align=align)
    assert addr % align == 0
