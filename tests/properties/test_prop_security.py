"""Property-based security fuzzing.

Hypothesis drives randomized hostile hypervisor behaviour against the
SM's validation surfaces and checks the safety envelope: either the SM
refuses, or the effect is within the narrow legitimate set -- never
silent corruption of protected state.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Machine, MachineConfig
from repro.errors import SecurityViolation
from repro.isa.hart import GPR_NAMES
from repro.sm.vcpu import SHARED_VCPU_FIELDS

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


@pytest.fixture(scope="module")
def shared_machine():
    """One machine reused across examples (fresh CVM state per example)."""
    return Machine(MachineConfig())


class TestCheckAfterLoadFuzz:
    @settings(max_examples=60, deadline=None)
    @given(reply=st.dictionaries(st.sampled_from(list(SHARED_VCPU_FIELDS)), u64, max_size=9))
    def test_random_replies_never_corrupt_protected_state(self, shared_machine, reply):
        """Whatever the hypervisor writes into the shared page, either the
        SM rejects the resume, or only a0/sepc(+2|4)/hvip(VS bits) change."""
        machine = shared_machine
        session = machine.launch_confidential_vm(image=b"fuzz" * 100)
        cvm, vcpu = session.cvm, session.cvm.vcpu(0)
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        machine.hart.write_gpr("sp", 0x8000_F000)
        machine.hart.write_gpr("ra", 0x8000_1234)
        ws.exit_to_normal(
            machine.hart, cvm, vcpu,
            {"kind": "mmio_load", "cause": 21, "htval": 0x1000_0000,
             "htinst": 0x503, "gpr_index": 10, "gpr_value": 0},
        )
        before = dict(vcpu.gprs)
        before_pc = vcpu.pc
        shared = cvm.shared_vcpus[0]
        for field, value in reply.items():
            shared.hyp_write(machine.hart, field, value)
        try:
            ws.enter_cvm(machine.hart, cvm, vcpu)
        except SecurityViolation:
            # Refused: protected state must be exactly as saved.
            assert vcpu.gprs == before
            assert vcpu.pc == before_pc
            return
        # Accepted: only the architecturally-legitimate effects occurred.
        changed = {
            name for name in GPR_NAMES
            if vcpu.gprs[name] != before[name]
        }
        assert changed <= {"a0"}  # the MMIO load's target register
        assert vcpu.pc - before_pc in (0, 2, 4)
        assert vcpu.csrs["hvip"] & ~(1 << 2 | 1 << 6 | 1 << 10) == 0

    @settings(max_examples=40, deadline=None)
    @given(garbage=st.binary(min_size=72, max_size=72))
    def test_raw_page_scribble_never_accepted_as_valid_redirect(self, shared_machine, garbage):
        machine = shared_machine
        session = machine.launch_confidential_vm(image=b"fz" * 100)
        cvm, vcpu = session.cvm, session.cvm.vcpu(0)
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        ws.exit_to_normal(
            machine.hart, cvm, vcpu,
            {"kind": "mmio_load", "cause": 21, "htval": 0x1000_0000,
             "htinst": 0x503, "gpr_index": 10, "gpr_value": 0},
        )
        shared = cvm.shared_vcpus[0]
        machine.bus.cpu_write(machine.hart, shared.base_pa, garbage)
        sp_before = vcpu.gprs["sp"]
        try:
            ws.enter_cvm(machine.hart, cvm, vcpu)
        except SecurityViolation:
            pass
        # Under no input does the stack pointer move.
        assert vcpu.gprs["sp"] == sp_before


class TestWorldSwitchRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        gprs=st.dictionaries(st.sampled_from(GPR_NAMES), u64, min_size=1, max_size=8),
        vsepc=u64,
    )
    def test_arbitrary_guest_state_survives_switches(self, shared_machine, gprs, vsepc):
        machine = shared_machine
        session = machine.launch_confidential_vm(image=b"rt" * 50)
        cvm, vcpu = session.cvm, session.cvm.vcpu(0)
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        for name, value in gprs.items():
            machine.hart.write_gpr(name, value)
        machine.hart.csrs.write_raw("vsepc", vsepc)
        ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "timer", "cause": 7})
        # Hostile host: trash everything it can reach.
        for name in GPR_NAMES:
            machine.hart.write_gpr(name, 0xBAD0BAD0BAD0BAD0)
        machine.hart.csrs.write_raw("vsepc", 0)
        ws.enter_cvm(machine.hart, cvm, vcpu)
        for name, value in gprs.items():
            assert machine.hart.read_gpr(name) == value, name
        assert machine.hart.csrs.read_raw("vsepc") == vsepc
