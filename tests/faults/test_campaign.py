"""Campaign runner + CLI: seeds run clean and replay exactly."""

from repro.__main__ import main
from repro.faults.campaign import run_campaign, run_seed


def test_seed_zero_is_contained():
    result = run_seed(0, rounds=4)
    assert result.ok
    assert result.injected >= 1
    assert result.crashes == []
    assert result.violations == []


def test_replay_is_deterministic():
    """The documented repro workflow: --seed K reproduces a run exactly."""
    first = run_seed(3, rounds=4)
    second = run_seed(3, rounds=4)
    assert first.plan == second.plan
    assert first.injected == second.injected
    assert first.outcomes == second.outcomes
    assert first.contained == second.contained
    assert first.crashes == second.crashes
    assert first.violations == second.violations


def test_campaign_runs_each_seed_once():
    results = run_campaign([0, 1], rounds=3)
    assert [r.seed for r in results] == [0, 1]
    assert all(r.summary().startswith(f"seed {r.seed:>4}") for r in results)


def test_cli_faults_campaign(capsys):
    assert main(["faults", "--seeds", "2", "--rounds", "3"]) == 0
    out = capsys.readouterr().out
    assert "campaign: 2 seeds" in out
    assert "0 failing" in out


def test_cli_single_seed_replay(capsys):
    assert main(["faults", "--seed", "1", "--rounds", "3", "-v"]) == 0
    out = capsys.readouterr().out
    assert "campaign: 1 seeds" in out
    assert "plan: seed=1:" in out
