"""Forced single-fault injections: every class must be contained."""

import pytest

from repro.errors import SecurityViolation
from repro.faults.campaign import page_stress, tolerant_client, tolerant_server
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.machine import Machine, MachineConfig
from repro.sm.alloc import PoolExhausted

IMAGE = b"forced-fault-guest" * 60


def _small_machine(**overrides):
    machine = Machine(MachineConfig(initial_pool_bytes=2 << 20, **overrides))
    machine.hypervisor.expand_chunk = 1 << 20
    return machine


def _run_pair_with_plan(plan, rounds=3):
    """Tolerant server/client ping-pong under a forced plan.

    The short timer tick makes timer exit/entry cycles (the enter seam
    with a pending exit context) happen early even in a light workload.
    """
    machine = _small_machine(timer_tick_cycles=50_000)
    server = machine.launch_confidential_vm(image=IMAGE)
    client = machine.launch_confidential_vm(image=IMAGE)
    measurement = server.cvm.measurement
    box = {}
    pairs = [
        (server, tolerant_server(measurement, rounds, box)),
        (client, tolerant_client(box, measurement, rounds)),
    ]
    with FaultInjector(machine, plan) as injector:
        results = machine.run_concurrent(pairs, on_error="contain")
    return injector, results, server, client


def _sites(injector):
    return [entry["site"] for entry in injector.applied]


class TestChannelFaults:
    def test_poisoned_length_prefix_is_detected(self):
        # Occurrence 1 of the notify seam is the client's first send
        # doorbell: its message sits queued in ring 1 (client tx), so the
        # poison lands on a live prefix the server reads next.
        plan = FaultPlan.single("window_length", at=1, params=(1,))
        injector, results, server, _client = _run_pair_with_plan(plan)
        assert _sites(injector) == ["window_length"]
        assert results[server] == {"echoed": 0, "corrupt_detected": True}
        assert injector.violations == []

    def test_torn_ring_counter_is_detected(self):
        plan = FaultPlan.single("ring_tear", at=1, params=(1, 1 << 20))
        injector, results, server, _client = _run_pair_with_plan(plan)
        assert _sites(injector) == ["ring_tear"]
        assert results[server]["corrupt_detected"] is True
        assert injector.violations == []

    def test_dropped_doorbell_does_not_wedge_tolerant_guests(self):
        plan = FaultPlan.single("doorbell_drop", at=1)
        injector, results, server, client = _run_pair_with_plan(plan)
        assert _sites(injector) == ["doorbell_drop"]
        assert results[client]["rounds"] == 3
        assert results[server]["echoed"] == 3
        assert injector.violations == []

    def test_duplicated_doorbell_is_harmless(self):
        plan = FaultPlan.single("doorbell_dup", at=1)
        injector, results, server, client = _run_pair_with_plan(plan)
        assert _sites(injector) == ["doorbell_dup"]
        assert results[client]["rounds"] == 3
        assert results[server]["echoed"] == 3
        assert injector.violations == []


class TestVcpuCorruption:
    def test_corrupt_gpr_reply_is_refused_by_check_after_load(self):
        # A GPR result on a non-MMIO exit is exactly what Check-after-Load
        # exists to catch; the refusal must surface as a typed violation.
        plan = FaultPlan.single("vcpu_corrupt", at=1,
                                params=("gpr_value", 0xDEAD))
        injector, results, _server, _client = _run_pair_with_plan(plan)
        assert _sites(injector) == ["vcpu_corrupt"]
        refusals = [r for r in results.values()
                    if isinstance(r, SecurityViolation)]
        assert len(refusals) == 1
        assert "check-after-load" in str(refusals[0])
        assert injector.violations == []


class TestExpansionFaults:
    def test_single_failed_expansion_absorbed_by_monitor_retry(self):
        machine = _small_machine()
        stress = machine.launch_confidential_vm(image=IMAGE)
        plan = FaultPlan.single("expand_fail", at=1)
        with FaultInjector(machine, plan) as injector:
            results = machine.run_concurrent(
                [(stress, page_stress(pages=600))], on_error="contain"
            )
        assert _sites(injector) == ["expand_fail"]
        assert results[stress] == {"touched": 600}
        assert injector.violations == []

    def test_persistent_expansion_failure_is_typed_exhaustion(self):
        machine = _small_machine()
        stress = machine.launch_confidential_vm(image=IMAGE)
        plan = FaultPlan(-1, tuple(
            FaultEvent("expand_fail", at) for at in (1, 2, 3)
        ))
        with FaultInjector(machine, plan) as injector:
            results = machine.run_concurrent(
                [(stress, page_stress(pages=600))], on_error="contain"
            )
        assert isinstance(results[stress], PoolExhausted)
        assert "expand" in str(results[stress])
        assert injector.violations == []

    def test_short_donation_is_absorbed(self):
        machine = _small_machine()
        stress = machine.launch_confidential_vm(image=IMAGE)
        plan = FaultPlan.single("expand_short", at=1)
        with FaultInjector(machine, plan) as injector:
            results = machine.run_concurrent(
                [(stress, page_stress(pages=600))], on_error="contain"
            )
        assert _sites(injector) == ["expand_short"]
        assert results[stress] == {"touched": 600}
        assert injector.violations == []


class TestTimerFaults:
    def test_spurious_timer_cycle_preserves_progress(self):
        plan = FaultPlan.single("timer_spurious", at=2)
        injector, results, server, client = _run_pair_with_plan(plan)
        assert _sites(injector) == ["timer_spurious"]
        assert results[client]["rounds"] == 3
        assert results[server]["echoed"] == 3
        assert injector.violations == []


class TestLifecycle:
    def test_detach_restores_every_seam(self):
        machine = Machine(MachineConfig())
        ws = machine.monitor.world_switch
        manager = machine.monitor.channels
        originals = (
            ws.enter_cvm,
            ws.exit_to_normal,
            manager.notify,
            machine.hypervisor.on_pool_expand_request,
            machine.check_timer,
        )
        with FaultInjector(machine, FaultPlan.single("doorbell_drop")):
            assert ws.enter_cvm != originals[0]
            assert ws.exit_to_normal != originals[1]
            assert manager.notify != originals[2]
            assert machine.check_timer != originals[4]
        # Bound-method equality: same underlying function, same receiver.
        assert ws.enter_cvm == originals[0]
        assert ws.exit_to_normal == originals[1]
        assert manager.notify == originals[2]
        assert machine.hypervisor.on_pool_expand_request == originals[3]
        assert machine.check_timer == originals[4]

    def test_unknown_site_is_rejected_at_plan_time(self):
        from repro.faults.plan import _draw_event
        import random

        with pytest.raises(ValueError):
            _draw_event(random.Random(0), "bogus_site")
