"""Seed -> FaultPlan determinism contract (repro.faults.plan)."""

from repro.faults.plan import FAULT_SITES, SITE_SEAMS, FaultEvent, FaultPlan


def test_same_seed_same_plan():
    """All randomness is consumed at plan build time: replays are exact."""
    for seed in range(20):
        first = FaultPlan.from_seed(seed)
        second = FaultPlan.from_seed(seed)
        assert first.events == second.events
        assert first.describe() == second.describe()


def test_different_seeds_produce_different_plans():
    assert len({FaultPlan.from_seed(s).describe() for s in range(20)}) > 1


def test_event_count_bounds_and_distinct_sites():
    for seed in range(50):
        plan = FaultPlan.from_seed(seed)
        assert 3 <= len(plan) <= 6
        sites = [event.site for event in plan]
        assert len(set(sites)) == len(sites)  # no site drawn twice
        for event in plan:
            assert event.site in FAULT_SITES
            assert event.at >= 1


def test_every_site_reached_across_a_modest_seed_range():
    """The campaign's default 25 seeds plus margin cover all fault classes."""
    covered = set()
    for seed in range(40):
        covered.update(event.site for event in FaultPlan.from_seed(seed))
    assert covered == set(FAULT_SITES)


def test_for_seam_partitions_the_plan():
    plan = FaultPlan.from_seed(7)
    by_seam = [
        event
        for seam in ("enter", "notify", "expand", "timer")
        for event in plan.for_seam(seam)
    ]
    assert len(by_seam) == len(plan)
    assert set(by_seam) == set(plan.events)
    for event in plan:
        assert SITE_SEAMS[event.site] in ("enter", "notify", "expand", "timer")


def test_single_builds_a_one_event_plan():
    plan = FaultPlan.single("ring_tear", at=5, params=(1, 99))
    assert len(plan) == 1
    event = plan.events[0]
    assert (event.site, event.at, event.params) == ("ring_tear", 5, (1, 99))


def test_describe_names_seed_and_sites():
    plan = FaultPlan.from_seed(11)
    text = plan.describe()
    assert "seed=11" in text
    for event in plan:
        assert event.site in text


def test_event_describe_is_compact():
    assert FaultEvent("doorbell_drop", 3).describe() == "doorbell_drop[@3]"


# -- seam-scoped plans (repro.fleet's migration campaigns) -------------------


def test_resolve_seams_aliases_and_dedup():
    from repro.faults.plan import resolve_seams

    assert resolve_seams(["channel"]) == ("notify",)
    assert resolve_seams(["lifecycle"]) == ("enter", "expand", "timer")
    assert resolve_seams(["migration", "channel"]) == ("migration", "notify")
    # First-mention order, duplicates collapsed.
    assert resolve_seams(["notify", "channel", "notify"]) == ("notify",)


def test_resolve_seams_rejects_unknown_names():
    import pytest

    from repro.faults.plan import resolve_seams

    with pytest.raises(ValueError, match="unknown fault seam"):
        resolve_seams(["migration", "typo"])


def test_seam_scoped_plan_draws_only_from_those_seams():
    for seed in range(20):
        plan = FaultPlan.from_seed(seed, seams=["migration", "channel"])
        for event in plan:
            assert SITE_SEAMS[event.site] in ("migration", "notify")


def test_seam_scoped_plan_with_no_sites_is_an_error():
    import pytest

    with pytest.raises(ValueError, match="no fault sites"):
        FaultPlan.from_seed(0, seams=[])


def test_default_pool_replays_historical_plans_exactly():
    """seams=None must keep the pre-migration-era rng stream: existing
    seeds replay the exact plans they always produced."""
    for seed in range(20):
        unscoped = FaultPlan.from_seed(seed)
        explicit = FaultPlan.from_seed(seed, seams=None)
        assert unscoped.events == explicit.events
        for event in unscoped:
            assert event.site in FAULT_SITES  # never a migration site


def test_migration_sites_reachable_across_seeds():
    from repro.faults.plan import MIGRATION_SITES

    seen = set()
    for seed in range(60):
        for event in FaultPlan.from_seed(seed, seams=["migration"]):
            seen.add(event.site)
    assert seen == set(MIGRATION_SITES)
