"""Cycle ledger semantics."""

import pytest

from repro.cycles import Category, CycleLedger


def test_charges_accumulate():
    ledger = CycleLedger()
    ledger.charge(Category.COMPUTE, 100)
    ledger.charge(Category.TRAP, 50)
    ledger.charge(Category.COMPUTE, 25)
    assert ledger.total == 175
    assert ledger.by_category()[Category.COMPUTE] == 125
    assert ledger.by_category()[Category.TRAP] == 50


def test_float_charges_floored_to_int():
    ledger = CycleLedger()
    ledger.charge(Category.COPY, 10.9)
    assert ledger.total == 10


def test_negative_charge_rejected():
    ledger = CycleLedger()
    with pytest.raises(ValueError):
        ledger.charge(Category.COMPUTE, -1)


def test_zero_charge_allowed():
    ledger = CycleLedger()
    ledger.charge(Category.COMPUTE, 0)
    assert ledger.total == 0


def test_by_category_is_snapshot():
    ledger = CycleLedger()
    ledger.charge(Category.COMPUTE, 1)
    snap = ledger.by_category()
    ledger.charge(Category.COMPUTE, 1)
    assert snap[Category.COMPUTE] == 1


def test_span_measures_window():
    ledger = CycleLedger()
    ledger.charge(Category.COMPUTE, 100)
    with ledger.span() as span:
        ledger.charge(Category.TRAP, 30)
        ledger.charge(Category.COMPUTE, 20)
    assert span.cycles == 50
    assert span.breakdown == {Category.TRAP: 30, Category.COMPUTE: 20}
    # Charges outside the span don't leak in.
    ledger.charge(Category.TRAP, 5)
    assert span.cycles == 50


def test_nested_spans():
    ledger = CycleLedger()
    with ledger.span() as outer:
        ledger.charge(Category.COMPUTE, 10)
        with ledger.span() as inner:
            ledger.charge(Category.TRAP, 5)
        ledger.charge(Category.COMPUTE, 10)
    assert inner.cycles == 5
    assert outer.cycles == 25


def test_nested_span_breakdown_propagates_to_parent():
    """A child span's categories must appear in the enclosing span's
    breakdown even when the parent never charged them directly."""
    ledger = CycleLedger()
    with ledger.span() as outer:
        ledger.charge(Category.COMPUTE, 10)
        with ledger.span() as inner:
            ledger.charge(Category.TRAP, 5)
            ledger.charge(Category.PMP, 3)
    assert inner.breakdown == {Category.TRAP: 5, Category.PMP: 3}
    assert outer.breakdown == {
        Category.COMPUTE: 10,
        Category.TRAP: 5,
        Category.PMP: 3,
    }


def test_adjacent_spans_do_not_leak_categories():
    """Sequential (sibling) spans each see only their own charges."""
    ledger = CycleLedger()
    with ledger.span() as first:
        ledger.charge(Category.TRAP, 7)
    with ledger.span() as second:
        ledger.charge(Category.COPY, 4)
    assert first.breakdown == {Category.TRAP: 7}
    assert second.breakdown == {Category.COPY: 4}
    assert first.cycles == 7
    assert second.cycles == 4


def test_deeply_nested_spans_accumulate_through_every_level():
    ledger = CycleLedger()
    with ledger.span() as a:
        with ledger.span() as b:
            with ledger.span() as c:
                ledger.charge(Category.ALLOC, 2)
            ledger.charge(Category.SM_LOGIC, 1)
    assert c.breakdown == {Category.ALLOC: 2}
    assert b.breakdown == {Category.ALLOC: 2, Category.SM_LOGIC: 1}
    assert a.breakdown == {Category.ALLOC: 2, Category.SM_LOGIC: 1}


def test_zero_charge_inside_span_excluded_from_breakdown():
    """Zero-cycle charges mark the category in by_category() but produce
    no breakdown entry (no cycles were spent in the window)."""
    ledger = CycleLedger()
    with ledger.span() as span:
        ledger.charge(Category.IDLE, 0)
        ledger.charge(Category.COMPUTE, 6)
    assert span.breakdown == {Category.COMPUTE: 6}
    assert Category.IDLE in ledger.by_category()


def test_span_close_is_idempotent():
    ledger = CycleLedger()
    span = ledger.span()
    with span:
        ledger.charge(Category.TRAP, 9)
    span.close()  # second close must not re-pop or change results
    assert span.cycles == 9
    assert span.breakdown == {Category.TRAP: 9}
