"""Cycle ledger semantics."""

import pytest

from repro.cycles import Category, CycleLedger


def test_charges_accumulate():
    ledger = CycleLedger()
    ledger.charge(Category.COMPUTE, 100)
    ledger.charge(Category.TRAP, 50)
    ledger.charge(Category.COMPUTE, 25)
    assert ledger.total == 175
    assert ledger.by_category()[Category.COMPUTE] == 125
    assert ledger.by_category()[Category.TRAP] == 50


def test_float_charges_floored_to_int():
    ledger = CycleLedger()
    ledger.charge(Category.COPY, 10.9)
    assert ledger.total == 10


def test_negative_charge_rejected():
    ledger = CycleLedger()
    with pytest.raises(ValueError):
        ledger.charge(Category.COMPUTE, -1)


def test_zero_charge_allowed():
    ledger = CycleLedger()
    ledger.charge(Category.COMPUTE, 0)
    assert ledger.total == 0


def test_by_category_is_snapshot():
    ledger = CycleLedger()
    ledger.charge(Category.COMPUTE, 1)
    snap = ledger.by_category()
    ledger.charge(Category.COMPUTE, 1)
    assert snap[Category.COMPUTE] == 1


def test_span_measures_window():
    ledger = CycleLedger()
    ledger.charge(Category.COMPUTE, 100)
    with ledger.span() as span:
        ledger.charge(Category.TRAP, 30)
        ledger.charge(Category.COMPUTE, 20)
    assert span.cycles == 50
    assert span.breakdown == {Category.TRAP: 30, Category.COMPUTE: 20}
    # Charges outside the span don't leak in.
    ledger.charge(Category.TRAP, 5)
    assert span.cycles == 50


def test_nested_spans():
    ledger = CycleLedger()
    with ledger.span() as outer:
        ledger.charge(Category.COMPUTE, 10)
        with ledger.span() as inner:
            ledger.charge(Category.TRAP, 5)
        ledger.charge(Category.COMPUTE, 10)
    assert inner.cycles == 5
    assert outer.cycles == 25
