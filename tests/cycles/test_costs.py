"""Cost-table sanity and derived helpers."""

import dataclasses

from repro.cycles import CycleCosts, DEFAULT_COSTS


def test_all_costs_non_negative():
    for field in dataclasses.fields(CycleCosts):
        value = getattr(DEFAULT_COSTS, field.name)
        assert value >= 0, field.name


def test_gpr_file_save():
    assert DEFAULT_COSTS.gpr_file_save == 31 * DEFAULT_COSTS.gpr_save


def test_csr_swap():
    assert DEFAULT_COSTS.csr_swap == DEFAULT_COSTS.csr_read + DEFAULT_COSTS.csr_write


def test_copy_bytes_scales_linearly():
    assert DEFAULT_COSTS.copy_bytes(0) == 0
    assert DEFAULT_COSTS.copy_bytes(1000) == int(1000 * DEFAULT_COSTS.copy_per_byte)


def test_zero_cheaper_than_copy():
    assert DEFAULT_COSTS.zero_bytes(4096) < DEFAULT_COSTS.copy_bytes(4096)


def test_costs_frozen_but_replaceable():
    """Ablations use dataclasses.replace; the base table stays immutable."""
    import pytest

    with pytest.raises(dataclasses.FrozenInstanceError):
        DEFAULT_COSTS.trap_to_m = 1
    variant = dataclasses.replace(DEFAULT_COSTS, trap_to_m=999)
    assert variant.trap_to_m == 999
    assert DEFAULT_COSTS.trap_to_m != 999


def test_relative_ordering_matches_hardware_intuition():
    c = DEFAULT_COSTS
    # A trap costs more than a CSR access; a TLB flush more than a trap.
    assert c.trap_to_m > c.csr_swap
    assert c.tlb_flush_gvma > c.trap_to_m
    # Delegated guest traps are cheaper than M-mode traps.
    assert c.trap_to_vs < c.trap_to_m
    # The KVM gup path dwarfs the SM's fault fixed cost difference.
    assert c.kvm_fault_fixed > c.sm_fault_fixed
