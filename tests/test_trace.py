"""Event tracer: hooking, ordering, queries, detach."""

import pytest

from repro.trace import Tracer


@pytest.fixture
def traced(machine):
    session = machine.launch_confidential_vm(image=b"traced" * 100)
    tracer = Tracer(machine)
    return machine, session, tracer


def test_records_world_switches_in_order(traced):
    machine, session, tracer = traced
    machine.run(session, lambda ctx: ctx.compute(2_500_000))
    kinds = [event.kind for event in tracer.events]
    assert kinds[0] == "cvm_enter"
    # Strict alternation: every exit is followed by an enter (timer ticks)
    # except the final halt.
    exits = tracer.of_kind("cvm_exit")
    enters = tracer.of_kind("cvm_enter")
    assert len(enters) == len(exits)  # final halt has no re-enter... but
    # the initial enter has no preceding exit -- they balance.


def test_exit_detail_carries_reason(traced):
    machine, session, tracer = traced
    machine.run(session, lambda ctx: ctx.compute(1_500_000))
    reasons = {event.detail["reason"] for event in tracer.of_kind("cvm_exit")}
    assert "timer" in reasons
    assert "halt" in reasons


def test_fault_events_with_stage(traced):
    machine, session, tracer = traced
    base = session.layout.dram_base + (8 << 20)
    machine.run(session, lambda ctx: ctx.store(base, 1))
    faults = tracer.of_kind("fault")
    assert faults
    assert faults[0].detail["path"] == "sm"
    assert faults[0].detail["stage"] in ("PAGE_CACHE", "NEW_BLOCK")
    assert faults[0].detail["cycles"] > 0


def test_ecall_events_name_the_function(machine):
    tracer = Tracer(machine)
    machine.monitor.ecall_create_cvm()
    functions = [event.detail["function"] for event in tracer.of_kind("ecall")]
    assert "ecall_create_cvm" in functions


def test_timestamps_monotonic(traced):
    machine, session, tracer = traced
    machine.run(session, lambda ctx: ctx.compute(2_000_000))
    cycles = [event.cycle for event in tracer.events]
    assert cycles == sorted(cycles)


def test_exit_latencies_measurable(traced):
    machine, session, tracer = traced
    machine.run(session, lambda ctx: ctx.compute(2_500_000))
    latencies = tracer.exit_latencies()
    assert latencies
    # A timer-exit -> re-enter round trip is several thousand cycles.
    assert all(2_000 < latency < 60_000 for latency in latencies)


def test_detach_stops_recording(traced):
    machine, session, tracer = traced
    machine.run(session, lambda ctx: ctx.compute(100))
    count = len(tracer.events)
    tracer.detach()
    machine.run(session, lambda ctx: ctx.compute(100))
    assert len(tracer.events) == count


def test_context_manager_detaches(machine):
    session = machine.launch_confidential_vm(image=b"x")
    with Tracer(machine) as tracer:
        machine.run(session, lambda ctx: ctx.compute(50))
        inside = len(tracer.events)
        assert inside > 0
    machine.run(session, lambda ctx: ctx.compute(50))
    assert len(tracer.events) == inside


def test_limit_bounds_memory(machine):
    session = machine.launch_confidential_vm(image=b"x")
    tracer = Tracer(machine, limit=3)
    machine.run(session, lambda ctx: ctx.compute(5_000_000))
    assert len(tracer.events) == 3


def test_timeline_renders(traced):
    machine, session, tracer = traced
    machine.run(session, lambda ctx: ctx.compute(100))
    text = tracer.timeline()
    assert "cvm_enter" in text


def test_fault_observer_chaining(machine):
    """The tracer must not clobber a pre-installed fault observer."""
    seen = []
    machine.fault_observer = lambda kind, stage, cycles: seen.append(kind)
    tracer = Tracer(machine)
    session = machine.launch_confidential_vm(image=b"x")
    base = session.layout.dram_base + (8 << 20)
    machine.run(session, lambda ctx: ctx.store(base, 1))
    assert seen == ["sm"]
    assert tracer.of_kind("fault")


def test_ecall_hook_names_nested_callers(machine):
    """The frame-based caller lookup must name the direct caller of
    _charge_ecall even when the ECALL is reached through a deep guest
    call chain (sbi dispatch -> monitor method)."""
    tracer = Tracer(machine)
    session = machine.launch_confidential_vm(image=b"deep" * 100)
    machine.run(session, lambda ctx: ctx.sbi_ecall(0x5A4E_0002, 2, 8))
    functions = [event.detail["function"] for event in tracer.of_kind("ecall")]
    assert "ecall_get_random" in functions
    assert all(func.startswith("ecall_") for func in functions)


def test_dropped_counter_and_timeline_note(machine):
    session = machine.launch_confidential_vm(image=b"x")
    tracer = Tracer(machine, limit=3)
    machine.run(session, lambda ctx: ctx.compute(5_000_000))
    assert len(tracer.events) == 3
    assert tracer.dropped > 0
    assert f"{tracer.dropped} events dropped" in tracer.timeline()


def test_nothing_dropped_reports_clean_timeline(traced):
    machine, session, tracer = traced
    machine.run(session, lambda ctx: ctx.compute(100))
    assert tracer.dropped == 0
    assert "dropped" not in tracer.timeline()
