"""Trace-cache equivalence: cached runs must be bit-identical to uncached.

The guest-access trace cache (``repro.mem.tracecache``) is a wall-clock
optimisation with a hard contract: with ``trace_cache`` on, every ledger
total, per-category count, TLB statistic, and byte of guest memory must
match a machine running the per-access loops.  These tests run the same
workload on a cached and an uncached machine and diff the full
architectural fingerprint, across strides, sizes, page-crossing shapes,
first-touch fault storms, timer ticks landing mid-sequence, and
invalidation by flush and remap.
"""

from __future__ import annotations

import pytest

from repro import Machine, MachineConfig
from repro.mem.physmem import PAGE_SIZE

IMAGE = b"trace-cache-equivalence" * 8


def _fingerprint(machine):
    tlb = machine.translator.tlb
    return {
        "total": machine.ledger.total,
        "by_category": machine.ledger.by_category(),
        "tlb": (tlb.hits, tlb.misses, tlb.flushes, tlb.page_flushes, len(tlb)),
    }


def _page_bytes(machine, session, gva):
    """Current contents of the page backing ``gva`` (uncharged probe)."""
    pa, _flags, _levels, _slot = machine.translator.probe_gpa(
        session.hgatp_root, gva & ~(PAGE_SIZE - 1)
    )
    assert pa is not None, f"page at {gva:#x} not mapped"
    return bytes(machine.dram.read(pa & ~(PAGE_SIZE - 1), PAGE_SIZE))


def _run_pair(workload, repeats=1, kind="cvm", check_pages=(), **cfg):
    """Run ``workload`` on a cached and an uncached machine; diff everything.

    Returns ``(cached_machine, cached_session, workload_results)``.
    """
    outcomes = []
    for trace_cache in (True, False):
        machine = Machine(MachineConfig(trace_cache=trace_cache, **cfg))
        if kind == "cvm":
            session = machine.launch_confidential_vm(image=IMAGE)
        else:
            session = machine.launch_normal_vm("equiv")
        results = [
            machine.run(session, workload)["workload_result"]
            for _ in range(repeats)
        ]
        outcomes.append((machine, session, results))
    (cached, cached_session, cached_results) = outcomes[0]
    (uncached, uncached_session, uncached_results) = outcomes[1]
    assert cached._trace_cache is not None
    assert uncached._trace_cache is None
    assert cached_results == uncached_results
    assert _fingerprint(cached) == _fingerprint(uncached)
    for gva in check_pages:
        assert _page_bytes(cached, cached_session, gva) == _page_bytes(
            uncached, uncached_session, gva
        )
    return cached, cached_session, cached_results


class TestSeqEquivalence:
    @pytest.mark.parametrize(
        "size,stride,count",
        [
            (8, None, 200),            # dense aligned
            (8, 24, 300),              # unaligned crossings inside pages
            (8, PAGE_SIZE, 64),        # one access per page, first-touch faults
            (4, 4, 256),               # sub-word dense
            (1, 509, 400),             # byte accesses striding across pages
            (8, PAGE_SIZE + 8, 48),    # page-crossing stride, misaligned pages
        ],
    )
    def test_store_then_load_seq(self, size, stride, count):
        base_off = 24 << 20

        def workload(ctx):
            base = ctx.session.layout.dram_base + base_off
            values = [(i * 2654435761) & 0xFFFF_FFFF for i in range(count)]
            ctx.store_seq(base, values, size=size, stride=stride)
            # Same shape twice more: the cached machine records on the
            # first pass and replays on the later ones.
            first = ctx.load_seq(base, count, size=size, stride=stride)
            second = ctx.load_seq(base, count, size=size, stride=stride)
            third = ctx.load_seq(base, count, size=size, stride=stride)
            assert first == second == third
            return first

        step = size if stride is None else stride
        pages = {base_off + i * step for i in range(count)}
        cached, session, results = _run_pair(
            workload,
            repeats=3,  # cross-run replays hit the all-miss flavor (TLB flushed between runs)
            check_pages=[
                0x8000_0000 + off for off in sorted(pages)[:8]
            ],
        )
        mask = (1 << (8 * min(size, 8))) - 1
        assert results[0][:4] == [(i * 2654435761) & 0xFFFF_FFFF & mask for i in range(4)]

    def test_touch_seq_rotating_working_set(self):
        """The redis shape: touch a fixed set, then rotating 10-page windows."""

        def workload(ctx):
            base = ctx.session.layout.dram_base + (64 << 20)
            pages = [base + i * PAGE_SIZE for i in range(64)]
            ctx.touch_seq(pages)
            for request in range(120):
                offset = (request * 10) % 64
                ctx.touch_seq(pages[(offset + k) % 64] for k in range(10))
                ctx.compute(5_000)
            return ctx.ledger.total

        _run_pair(workload, repeats=2)

    @pytest.mark.parametrize("padding", [1, 3, 17, 999, 65_521])
    def test_timer_tick_lands_mid_sequence(self, padding):
        """A tick firing inside a replayed chunk must split it exactly."""

        def workload(ctx):
            base = ctx.session.layout.dram_base + (32 << 20)
            # Warm the pages and the trace.
            warm = ctx.load_seq(base, 256, size=8, stride=PAGE_SIZE // 4)
            tick = ctx.machine.config.timer_tick_cycles
            # Park just short of the next tick so it fires mid-replay.
            until = ctx.machine.clint.read_mtimecmp(ctx.session.hart.hart_id) - ctx.ledger.total
            ctx.compute(max(1, until - padding))
            replay = ctx.load_seq(base, 256, size=8, stride=PAGE_SIZE // 4)
            assert warm == replay
            return ctx.ledger.total

        _run_pair(workload)

    def test_store_seq_replay_with_fresh_values(self):
        """Replays must write the *new* values, not the recorded run's."""

        def workload(ctx):
            base = ctx.session.layout.dram_base + (40 << 20)
            ctx.store_seq(base, [0xAA] * 32, stride=PAGE_SIZE)
            ctx.store_seq(base, [0xBB] * 32, stride=PAGE_SIZE)  # replay, new values
            return ctx.load_seq(base, 32, stride=PAGE_SIZE)

        _, _, results = _run_pair(
            workload, check_pages=[(40 << 20) + 0x8000_0000]
        )
        assert results[0] == [0xBB] * 32

    def test_normal_vm_sequences(self):
        """Normal VMs take KVM fault paths; the engine must match those too."""

        def workload(ctx):
            base = ctx.session.layout.dram_base + (8 << 20)
            ctx.store_seq(base, list(range(96)), stride=PAGE_SIZE // 2)
            out = ctx.load_seq(base, 96, stride=PAGE_SIZE // 2)
            out2 = ctx.load_seq(base, 96, stride=PAGE_SIZE // 2)
            assert out == out2
            return out

        _, _, results = _run_pair(workload, repeats=2, kind="normal")
        assert results[0] == list(range(96))

    def test_single_access_fast_path(self):
        """load/store/read_bytes/write_bytes ride the one-access engine."""

        def workload(ctx):
            base = ctx.session.layout.dram_base + (48 << 20)
            for i in range(64):
                ctx.store(base + i * 8, i * 3)
            total = sum(ctx.load(base + i * 8) for i in range(64))
            blob = bytes(range(256)) * 40  # crosses pages
            ctx.write_bytes(base + 0x3F00, blob)
            assert ctx.read_bytes(base + 0x3F00, len(blob)) == blob
            return total

        _, _, results = _run_pair(workload, repeats=2)
        assert results[0] == sum(i * 3 for i in range(64))


class TestInvalidation:
    def test_remap_invalidates_traces(self):
        """A table mutation between replays must invalidate the trace."""

        def workload(ctx):
            base = ctx.session.layout.dram_base + (56 << 20)
            ctx.store_seq(base, [7] * 16, stride=PAGE_SIZE)
            first = ctx.load_seq(base, 16, stride=PAGE_SIZE)
            # Balloon the pages back to the SM (unmaps + scrubs), then
            # re-touch: the faults must remap fresh zeroed frames and the
            # stale trace must not resurrect the old PAs.
            freed = ctx.reclaim_pages(base, 16)
            assert freed == 16
            second = ctx.load_seq(base, 16, stride=PAGE_SIZE)
            return first, second

        _, _, results = _run_pair(workload, check_pages=[(56 << 20) + 0x8000_0000])
        first, second = results[0]
        assert first == [7] * 16
        assert second == [0] * 16

    def test_flush_between_replays(self):
        """World-switch hfences between runs flip hit traces to miss runs."""

        def workload(ctx):
            base = ctx.session.layout.dram_base + (20 << 20)
            out = ctx.load_seq(base, 48, stride=PAGE_SIZE)
            out2 = ctx.load_seq(base, 48, stride=PAGE_SIZE)
            assert out == out2
            return out

        # Each machine.run() exits and re-enters the CVM, flushing the
        # TLB: run 1 records, later runs must revalidate structurally.
        cached, _session, _results = _run_pair(workload, repeats=3)
        assert len(cached._trace_cache) >= 1

    def test_map_generation_bump_forces_revalidation(self):
        machine = Machine(MachineConfig())
        session = machine.launch_confidential_vm(image=IMAGE)
        base = session.layout.dram_base + (12 << 20)

        def workload(ctx):
            return ctx.load_seq(base, 24, stride=PAGE_SIZE)

        first = machine.run(session, workload)["workload_result"]
        # Any SM-side table mutation bumps the token; the stale trace must
        # re-execute (and still produce identical values).
        machine.monitor.split.map_generation += 1
        second = machine.run(session, workload)["workload_result"]
        assert first == second

    def test_non_integral_costs_disable_the_engine(self):
        import dataclasses

        from repro.cycles import DEFAULT_COSTS

        costs = dataclasses.replace(DEFAULT_COSTS, tlb_hit=0.5)
        machine = Machine(MachineConfig(costs=costs))
        assert machine._trace_cache is None
