"""Frame allocator: first-fit, alignment, coalescing."""

import pytest

from repro.errors import MemoryError_
from repro.mem.frames import FrameAllocator
from repro.mem.physmem import PAGE_SIZE

BASE = 0x8020_0000


@pytest.fixture
def alloc():
    return FrameAllocator(BASE, 1 << 20)


def test_alignment_validation():
    with pytest.raises(ValueError):
        FrameAllocator(0x100, PAGE_SIZE)
    with pytest.raises(ValueError):
        FrameAllocator(BASE, 100)


def test_sequential_allocation(alloc):
    a = alloc.alloc()
    b = alloc.alloc()
    assert a == BASE
    assert b == BASE + PAGE_SIZE


def test_aligned_allocation(alloc):
    alloc.alloc()  # offset the cursor
    pa = alloc.alloc(size=16 * 1024, align=16 * 1024)
    assert pa % (16 * 1024) == 0


def test_alloc_size_must_be_page_multiple(alloc):
    with pytest.raises(ValueError):
        alloc.alloc(size=100)


def test_exhaustion(alloc):
    alloc.alloc(size=1 << 20)
    with pytest.raises(MemoryError_):
        alloc.alloc()


def test_free_and_reuse(alloc):
    a = alloc.alloc()
    alloc.free(a)
    assert alloc.alloc() == a


def test_free_coalesces(alloc):
    a = alloc.alloc()
    b = alloc.alloc()
    c = alloc.alloc()
    alloc.free(a)
    alloc.free(c)
    alloc.free(b)
    # Everything merged back: a full-size allocation must succeed.
    assert alloc.alloc(size=1 << 20) == BASE


def test_double_free_detected(alloc):
    a = alloc.alloc()
    alloc.free(a)
    with pytest.raises(MemoryError_):
        alloc.free(a)


def test_free_outside_range_rejected(alloc):
    with pytest.raises(MemoryError_):
        alloc.free(BASE - PAGE_SIZE)


def test_free_bytes_accounting(alloc):
    start = alloc.free_bytes()
    a = alloc.alloc(size=3 * PAGE_SIZE)
    assert alloc.free_bytes() == start - 3 * PAGE_SIZE
    alloc.free(a, 3 * PAGE_SIZE)
    assert alloc.free_bytes() == start


def test_alignment_waste_is_not_lost(alloc):
    alloc.alloc()  # cursor at BASE+4K
    aligned = alloc.alloc(size=64 * 1024, align=64 * 1024)
    # The gap between BASE+4K and the aligned block stays allocatable.
    filler = alloc.alloc()
    assert BASE + PAGE_SIZE <= filler < aligned
