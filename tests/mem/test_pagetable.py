"""Sv39 / Sv39x4 page tables over real simulated memory."""

import pytest

from repro.errors import MemoryError_
from repro.isa.traps import AccessType
from repro.mem.pagetable import (
    PTE_R,
    PTE_V,
    PTE_W,
    PTE_X,
    Sv39,
    Sv39x4,
    pte_is_leaf,
    pte_pack,
    pte_target,
)
from repro.mem.physmem import PAGE_SIZE, PhysicalMemory

BASE = 0x8000_0000


class RawAccessor:
    def __init__(self, dram):
        self.dram = dram

    def read_u64(self, addr):
        return self.dram.read_u64(addr)

    def write_u64(self, addr, value):
        self.dram.write_u64(addr, value)


@pytest.fixture
def dram():
    return PhysicalMemory(BASE, 64 << 20)


@pytest.fixture
def acc(dram):
    return RawAccessor(dram)


@pytest.fixture
def table_alloc(dram):
    cursor = [BASE + (1 << 20)]

    def alloc():
        pa = cursor[0]
        cursor[0] += PAGE_SIZE
        dram.zero_range(pa, PAGE_SIZE)
        return pa

    return alloc


class TestPteEncoding:
    def test_pack_unpack(self):
        pte = pte_pack(0x8123_4000, PTE_V | PTE_R)
        assert pte_target(pte) == 0x8123_4000
        assert pte & PTE_V
        assert pte_is_leaf(pte)

    def test_pointer_pte_is_not_leaf(self):
        assert not pte_is_leaf(pte_pack(0x8000_1000, PTE_V))

    def test_pack_requires_alignment(self):
        with pytest.raises(ValueError):
            pte_pack(0x8000_0100, PTE_V)


class TestSv39Geometry:
    def test_sv39_geometry(self):
        pt = Sv39()
        assert pt.levels == 3
        assert pt.root_entries == 512
        assert pt.root_size == 4096
        assert pt.va_bits == 39

    def test_sv39x4_geometry(self):
        pt = Sv39x4()
        assert pt.root_entries == 2048
        assert pt.root_size == 16 * 1024
        assert pt.va_bits == 41


class TestMapWalk:
    @pytest.fixture
    def root(self, table_alloc):
        return table_alloc()

    def test_map_then_walk(self, acc, root, table_alloc):
        pt = Sv39()
        pt.map(acc, root, 0x4000_0000, BASE + 0x200000, PTE_R | PTE_W, table_alloc)
        result = pt.walk(acc, root, 0x4000_0000)
        assert result is not None
        assert result.pa == BASE + 0x200000
        assert result.flags & PTE_R
        assert result.level == 0
        assert result.levels_touched == 3

    def test_offset_within_page_preserved(self, acc, root, table_alloc):
        pt = Sv39()
        pt.map(acc, root, 0x4000_0000, BASE + 0x200000, PTE_R, table_alloc)
        result = pt.walk(acc, root, 0x4000_0ABC)
        assert result.pa == BASE + 0x200ABC

    def test_unmapped_returns_none(self, acc, root):
        assert Sv39().walk(acc, root, 0x1234_5000) is None

    def test_double_map_rejected(self, acc, root, table_alloc):
        pt = Sv39()
        pt.map(acc, root, 0x1000, BASE + 0x300000, PTE_R, table_alloc)
        with pytest.raises(MemoryError_):
            pt.map(acc, root, 0x1000, BASE + 0x400000, PTE_R, table_alloc)

    def test_unmap(self, acc, root, table_alloc):
        pt = Sv39()
        pt.map(acc, root, 0x2000, BASE + 0x300000, PTE_R, table_alloc)
        old = pt.unmap(acc, root, 0x2000)
        assert old == BASE + 0x300000
        assert pt.walk(acc, root, 0x2000) is None

    def test_unmap_unmapped_rejected(self, acc, root):
        with pytest.raises(MemoryError_):
            Sv39().unmap(acc, root, 0x9000)

    def test_set_flags(self, acc, root, table_alloc):
        pt = Sv39()
        pt.map(acc, root, 0x3000, BASE + 0x300000, PTE_R | PTE_W, table_alloc)
        pt.set_flags(acc, root, 0x3000, PTE_R)
        result = pt.walk(acc, root, 0x3000)
        assert result.flags & PTE_R
        assert not result.flags & PTE_W
        assert result.pa == BASE + 0x300000

    def test_map_alignment_enforced(self, acc, root, table_alloc):
        with pytest.raises(ValueError):
            Sv39().map(acc, root, 0x1234, BASE, PTE_R, table_alloc)

    def test_va_range_enforced(self, acc, root, table_alloc):
        with pytest.raises(MemoryError_):
            Sv39().map(acc, root, 1 << 39, BASE, PTE_R, table_alloc)
        with pytest.raises(MemoryError_):
            Sv39().walk(acc, root, 1 << 40)

    def test_superpage_mapping(self, acc, root, table_alloc):
        pt = Sv39()
        pt.map(acc, root, 0x4020_0000, BASE + 0x400000, PTE_R | PTE_X, table_alloc, level=1)
        result = pt.walk(acc, root, 0x4020_1000)
        assert result.level == 1
        assert result.pa == BASE + 0x401000
        assert result.levels_touched == 2

    def test_superpage_alignment_enforced(self, acc, root, table_alloc):
        with pytest.raises(ValueError):
            Sv39().map(acc, root, 0x4000_1000, BASE, PTE_R, table_alloc, level=1)

    def test_cannot_map_under_superpage(self, acc, root, table_alloc):
        pt = Sv39()
        pt.map(acc, root, 0x4020_0000, BASE + 0x400000, PTE_R, table_alloc, level=1)
        with pytest.raises(MemoryError_):
            pt.map(acc, root, 0x4020_3000, BASE + 0x800000, PTE_R, table_alloc)

    def test_permits(self):
        pt = Sv39()
        assert pt.permits(PTE_R, AccessType.LOAD)
        assert not pt.permits(PTE_R, AccessType.STORE)
        assert pt.permits(PTE_W, AccessType.STORE)
        assert pt.permits(PTE_X, AccessType.FETCH)


class TestSv39x4:
    def test_wide_root_index(self, acc, dram, table_alloc):
        """GPAs above 2^38 index the extended root (2048 entries)."""
        pt = Sv39x4()
        root = BASE + 0x800000
        dram.zero_range(root, pt.root_size)
        gpa = (1 << 38) + 0x1000
        pt.map(acc, root, gpa, BASE + 0x500000, PTE_R | PTE_W, table_alloc)
        result = pt.walk(acc, root, gpa)
        assert result.pa == BASE + 0x500000
        # The root slot used must be beyond a plain Sv39 root's range.
        root_index = gpa >> 30
        assert root_index >= 256
        pte = dram.read_u64(root + 8 * root_index)
        assert pte & PTE_V

    def test_iter_leaves(self, acc, dram, table_alloc):
        pt = Sv39x4()
        root = BASE + 0x900000
        dram.zero_range(root, pt.root_size)
        mappings = {0x8000_0000: BASE, 0x8000_1000: BASE + PAGE_SIZE, (1 << 38): BASE + 0x10000}
        for gpa, pa in mappings.items():
            pt.map(acc, root, gpa, pa, PTE_R, table_alloc)
        leaves = {va: pa for va, pa, _flags, _level in pt.iter_leaves(acc, root)}
        assert leaves == mappings

    def test_iter_tables_includes_all_levels(self, acc, dram, table_alloc):
        pt = Sv39x4()
        root = BASE + 0xA00000
        dram.zero_range(root, pt.root_size)
        pt.map(acc, root, 0x8000_0000, BASE, PTE_R, table_alloc)
        tables = list(pt.iter_tables(acc, root))
        assert tables[0] == root
        assert len(tables) == 3  # root + two intermediate levels
