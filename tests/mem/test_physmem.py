"""Physical memory and the permission-checked bus."""

import pytest

from repro.errors import MemoryError_, TrapRaised
from repro.isa.hart import Hart
from repro.isa.iopmp import IopmpEntry, IopmpUnit
from repro.isa.pmp import PmpAddressMode, PmpEntry
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import ExceptionCause
from repro.mem.physmem import PAGE_SIZE, MemoryBus, PhysicalMemory

BASE = 0x8000_0000


@pytest.fixture
def dram():
    return PhysicalMemory(BASE, 16 << 20)


class TestPhysicalMemory:
    def test_alignment_required(self):
        with pytest.raises(ValueError):
            PhysicalMemory(0x100, 4096)
        with pytest.raises(ValueError):
            PhysicalMemory(0, 100)

    def test_unwritten_memory_reads_zero(self, dram):
        assert dram.read(BASE + 0x1234, 16) == bytes(16)

    def test_write_read_roundtrip(self, dram):
        dram.write(BASE + 100, b"hello world")
        assert dram.read(BASE + 100, 11) == b"hello world"

    def test_cross_page_write(self, dram):
        addr = BASE + PAGE_SIZE - 4
        dram.write(addr, b"abcdefgh")
        assert dram.read(addr, 8) == b"abcdefgh"
        assert dram.resident_pages() == 2

    def test_out_of_range_rejected(self, dram):
        with pytest.raises(MemoryError_):
            dram.read(BASE - 8, 8)
        with pytest.raises(MemoryError_):
            dram.write(dram.end - 4, b"12345678")

    def test_u64_roundtrip(self, dram):
        dram.write_u64(BASE + 8, 0x1122334455667788)
        assert dram.read_u64(BASE + 8) == 0x1122334455667788

    def test_u64_alignment(self, dram):
        with pytest.raises(MemoryError_):
            dram.read_u64(BASE + 4)
        with pytest.raises(MemoryError_):
            dram.write_u64(BASE + 12, 0)

    def test_zero_range_full_pages_dropped(self, dram):
        dram.write(BASE, b"x" * PAGE_SIZE * 2)
        assert dram.resident_pages() == 2
        dram.zero_range(BASE, PAGE_SIZE * 2)
        assert dram.resident_pages() == 0
        assert dram.read(BASE, 8) == bytes(8)

    def test_zero_range_partial_page(self, dram):
        dram.write(BASE, b"x" * 64)
        dram.zero_range(BASE + 16, 16)
        assert dram.read(BASE, 16) == b"x" * 16
        assert dram.read(BASE + 16, 16) == bytes(16)
        assert dram.read(BASE + 32, 32) == b"x" * 32

    def test_sparse_backing(self, dram):
        dram.write(dram.end - PAGE_SIZE, b"z")
        assert dram.resident_pages() == 1


class TestMemoryBus:
    @pytest.fixture
    def hart(self):
        hart = Hart(0)
        hart.mode = PrivilegeMode.HS
        # Background allow-all except a protected window.
        hart.pmp.set_entry(0, PmpEntry(mode=PmpAddressMode.TOR, base=BASE + 0x100000, size=0x100000))
        hart.pmp.set_entry(
            15,
            PmpEntry(
                mode=PmpAddressMode.TOR, base=BASE, size=16 << 20,
                readable=True, writable=True, executable=True,
            ),
        )
        return hart

    @pytest.fixture
    def bus(self, dram):
        return MemoryBus(dram)

    def test_allowed_access_passes(self, bus, hart):
        bus.cpu_write(hart, BASE + 8, b"ok")
        assert bus.cpu_read(hart, BASE + 8, 2) == b"ok"

    def test_denied_read_raises_access_fault(self, bus, hart):
        with pytest.raises(TrapRaised) as excinfo:
            bus.cpu_read(hart, BASE + 0x100000, 8)
        assert excinfo.value.cause == ExceptionCause.LOAD_ACCESS_FAULT
        assert excinfo.value.tval == BASE + 0x100000

    def test_denied_write_raises_access_fault(self, bus, hart):
        with pytest.raises(TrapRaised) as excinfo:
            bus.cpu_write_u64(hart, BASE + 0x100008, 1)
        assert excinfo.value.cause == ExceptionCause.STORE_ACCESS_FAULT

    def test_fetch_check(self, bus, hart):
        bus.cpu_fetch_check(hart, BASE + 0x1000)
        with pytest.raises(TrapRaised) as excinfo:
            bus.cpu_fetch_check(hart, BASE + 0x100000)
        assert excinfo.value.cause == ExceptionCause.INSTRUCTION_ACCESS_FAULT

    def test_m_mode_bypasses_unlocked_entries(self, bus, hart):
        hart.mode = PrivilegeMode.M
        bus.cpu_write(hart, BASE + 0x100000, b"m-mode")

    def test_dma_respects_iopmp(self, dram):
        iopmp = IopmpUnit()
        iopmp.add_entry(IopmpEntry(base=BASE + 0x100000, size=0x100000))  # deny
        iopmp.add_entry(IopmpEntry(base=BASE, size=16 << 20, readable=True, writable=True))
        bus = MemoryBus(dram, iopmp)
        bus.dma_write(0, BASE + 64, b"dma")
        assert bus.dma_read(0, BASE + 64, 3) == b"dma"
        with pytest.raises(TrapRaised) as excinfo:
            bus.dma_write(0, BASE + 0x100000, b"attack")
        assert excinfo.value.cause == ExceptionCause.STORE_ACCESS_FAULT

    def test_dma_check_range_without_data(self, dram):
        from repro.isa.traps import AccessType

        iopmp = IopmpUnit()
        iopmp.add_entry(IopmpEntry(base=BASE, size=1 << 20, readable=True, writable=False))
        bus = MemoryBus(dram, iopmp)
        bus.dma_check_range(0, BASE, 4096, AccessType.LOAD)
        with pytest.raises(TrapRaised):
            bus.dma_check_range(0, BASE, 4096, AccessType.STORE)


class TestPageStraddlingAndBounds:
    """The single-page fast paths must leave straddling and bounds
    behaviour exactly as the generic loops had it."""

    def test_write_read_straddling_a_page_boundary(self, dram):
        addr = BASE + PAGE_SIZE - 3
        dram.write(addr, b"straddle")
        assert dram.read(addr, 8) == b"straddle"
        # Each side is independently readable through the fast path.
        assert dram.read(addr, 3) == b"str"
        assert dram.read(BASE + PAGE_SIZE, 5) == b"addle"

    def test_read_straddling_into_untouched_page_returns_zeros(self, dram):
        dram.write(BASE + PAGE_SIZE - 2, b"ab")
        assert dram.read(BASE + PAGE_SIZE - 2, 6) == b"ab" + bytes(4)

    def test_multi_page_write_spans_three_pages(self, dram):
        data = bytes(range(256)) * 33  # 8448 bytes > 2 pages
        addr = BASE + PAGE_SIZE - 100
        dram.write(addr, data)
        assert dram.read(addr, len(data)) == data

    def test_read_past_end_rejected(self, dram):
        with pytest.raises(MemoryError_):
            dram.read(dram.end - 4, 8)
        with pytest.raises(MemoryError_):
            dram.read(dram.end, 1)

    def test_write_past_end_rejected(self, dram):
        with pytest.raises(MemoryError_):
            dram.write(dram.end - 2, b"1234")

    def test_read_below_base_rejected(self, dram):
        with pytest.raises(MemoryError_):
            dram.read(BASE - 8, 8)

    def test_negative_size_rejected(self, dram):
        with pytest.raises(MemoryError_):
            dram.read(BASE, -1)

    def test_last_aligned_u64_slot_works(self, dram):
        addr = dram.end - 8
        dram.write_u64(addr, 0xDEAD_BEEF_CAFE_F00D)
        assert dram.read_u64(addr) == 0xDEAD_BEEF_CAFE_F00D

    def test_u64_past_end_rejected(self, dram):
        with pytest.raises(MemoryError_):
            dram.read_u64(dram.end)
        with pytest.raises(MemoryError_):
            dram.write_u64(dram.end, 1)

    def test_misaligned_u64_rejected(self, dram):
        with pytest.raises(MemoryError_):
            dram.read_u64(BASE + 4)
        with pytest.raises(MemoryError_):
            dram.write_u64(BASE + 1, 0)

    def test_u64_read_of_untouched_page_is_zero(self, dram):
        assert dram.read_u64(BASE + 8 * PAGE_SIZE) == 0
