"""TLB model: lookup, capacity, flush scoping."""

from repro.mem.tlb import Tlb


def test_miss_then_hit():
    tlb = Tlb()
    assert tlb.lookup(1, 0x80000) is None
    tlb.insert(1, 0x80000, 0x90000, 0b111)
    assert tlb.lookup(1, 0x80000) == (0x90000, 0b111)
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_vmid_isolation():
    tlb = Tlb()
    tlb.insert(1, 0x80000, 0x90000, 0b111)
    assert tlb.lookup(2, 0x80000) is None


def test_capacity_eviction_fifo():
    tlb = Tlb(capacity=4)
    for i in range(5):
        tlb.insert(1, i, i + 100, 0)
    assert len(tlb) == 4
    assert tlb.lookup(1, 0) is None  # oldest evicted
    assert tlb.lookup(1, 4) is not None


def test_flush_all():
    tlb = Tlb()
    tlb.insert(1, 1, 2, 0)
    tlb.insert(2, 1, 2, 0)
    tlb.flush_all()
    assert len(tlb) == 0
    assert tlb.flushes == 1


def test_flush_vmid_scoped():
    tlb = Tlb()
    tlb.insert(1, 1, 2, 0)
    tlb.insert(2, 1, 3, 0)
    tlb.flush_vmid(1)
    assert tlb.lookup(1, 1) is None
    assert tlb.lookup(2, 1) == (3, 0)


def test_flush_page():
    tlb = Tlb()
    tlb.insert(1, 5, 6, 0)
    tlb.insert(1, 7, 8, 0)
    tlb.flush_page(1, 5)
    assert tlb.lookup(1, 5) is None
    assert tlb.lookup(1, 7) == (8, 0)


def test_flush_page_missing_is_noop():
    tlb = Tlb()
    tlb.flush_page(1, 99)  # must not raise
