"""TLB model: lookup, capacity, flush scoping."""

from repro.mem.tlb import Tlb


def test_miss_then_hit():
    tlb = Tlb()
    assert tlb.lookup(1, 0x80000) is None
    tlb.insert(1, 0x80000, 0x90000, 0b111)
    assert tlb.lookup(1, 0x80000) == (0x90000, 0b111)
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_vmid_isolation():
    tlb = Tlb()
    tlb.insert(1, 0x80000, 0x90000, 0b111)
    assert tlb.lookup(2, 0x80000) is None


def test_capacity_eviction_takes_least_recent():
    tlb = Tlb(capacity=4)
    for i in range(5):
        tlb.insert(1, i, i + 100, 0)
    assert len(tlb) == 4
    # With no intervening lookups the least recently used IS the oldest.
    assert tlb.lookup(1, 0) is None
    assert tlb.lookup(1, 4) is not None


def test_lookup_refreshes_recency():
    """Pins the replacement policy as LRU, not FIFO: a hit saves an
    entry that insertion order alone would have evicted."""
    tlb = Tlb(capacity=4)
    for i in range(4):
        tlb.insert(1, i, i + 100, 0)
    assert tlb.lookup(1, 0) is not None  # refresh the oldest insert
    tlb.insert(1, 99, 199, 0)
    assert tlb.lookup(1, 0) is not None  # survived: recently used
    assert tlb.lookup(1, 1) is None      # evicted instead: least recent


def test_insert_refreshes_recency():
    tlb = Tlb(capacity=2)
    tlb.insert(1, 0, 10, 0)
    tlb.insert(1, 1, 11, 0)
    tlb.insert(1, 0, 12, 0)  # re-insert refreshes (and updates) entry 0
    tlb.insert(1, 2, 13, 0)
    assert tlb.lookup(1, 1) is None
    assert tlb.lookup(1, 0) == (12, 0)


def test_flush_all():
    tlb = Tlb()
    tlb.insert(1, 1, 2, 0)
    tlb.insert(2, 1, 2, 0)
    tlb.flush_all()
    assert len(tlb) == 0
    assert tlb.flushes == 1


def test_flush_vmid_scoped():
    tlb = Tlb()
    tlb.insert(1, 1, 2, 0)
    tlb.insert(2, 1, 3, 0)
    tlb.flush_vmid(1)
    assert tlb.lookup(1, 1) is None
    assert tlb.lookup(2, 1) == (3, 0)


def test_flush_page():
    tlb = Tlb()
    tlb.insert(1, 5, 6, 0)
    tlb.insert(1, 7, 8, 0)
    tlb.flush_page(1, 5)
    assert tlb.lookup(1, 5) is None
    assert tlb.lookup(1, 7) == (8, 0)


def test_flush_page_missing_is_noop():
    tlb = Tlb()
    tlb.flush_page(1, 99)  # must not raise


def test_page_flushes_counted_separately_from_flushes():
    tlb = Tlb()
    tlb.insert(1, 5, 6, 0)
    tlb.flush_page(1, 5)
    tlb.flush_page(1, 99)  # absent pages still count (hfence was issued)
    assert tlb.page_flushes == 2
    assert tlb.flushes == 0  # single-page invalidations are not hfence-scale
    tlb.flush_all()
    tlb.flush_vmid(1)
    assert tlb.flushes == 2
    assert tlb.page_flushes == 2


# -- per-vmid index consistency (flush_vmid without a full scan) ----------


def test_flush_vmid_drops_exactly_that_vmid():
    tlb = Tlb()
    for vpage in range(3):
        tlb.insert(7, vpage, vpage + 100, 0)
    tlb.insert(8, 0, 200, 0)
    tlb.flush_vmid(7)
    assert tlb.flushes == 1  # one hfence-scale event, however many entries
    assert len(tlb) == 1
    assert tlb.lookup(8, 0) == (200, 0)


def test_flush_vmid_after_eviction_skips_evicted_entries():
    """LRU eviction must also retire the entry from the per-vmid index,
    or a later flush_vmid would try to delete it twice."""
    tlb = Tlb(capacity=2)
    tlb.insert(1, 0, 10, 0)
    tlb.insert(1, 1, 11, 0)
    tlb.insert(1, 2, 12, 0)  # evicts (1, 0)
    tlb.flush_vmid(1)  # must not raise on the already-evicted entry
    assert tlb.flushes == 1
    assert len(tlb) == 0


def test_flush_vmid_after_flush_page_skips_flushed_entries():
    tlb = Tlb()
    tlb.insert(1, 5, 6, 0)
    tlb.insert(1, 7, 8, 0)
    tlb.flush_page(1, 5)
    tlb.flush_vmid(1)  # must not raise on the already-flushed page
    assert tlb.flushes == 1
    assert tlb.page_flushes == 1
    assert tlb.lookup(1, 7) is None


def test_flush_vmid_on_empty_vmid_still_counts_the_fence():
    tlb = Tlb()
    tlb.insert(3, 1, 2, 0)
    tlb.flush_vmid(3)
    tlb.flush_vmid(3)  # nothing left, but the hfence was still issued
    assert tlb.flushes == 2
    assert len(tlb) == 0


def test_reinsert_after_flush_vmid():
    tlb = Tlb()
    tlb.insert(4, 9, 90, 0b111)
    tlb.flush_vmid(4)
    tlb.insert(4, 9, 91, 0b011)
    assert tlb.lookup(4, 9) == (91, 0b011)
    tlb.flush_vmid(4)
    assert tlb.lookup(4, 9) is None


def test_eviction_across_vmids_keeps_other_vmid_flushable():
    tlb = Tlb(capacity=2)
    tlb.insert(1, 0, 10, 0)
    tlb.insert(2, 0, 20, 0)
    tlb.insert(2, 1, 21, 0)  # evicts vmid 1's only entry
    tlb.flush_vmid(1)  # nothing left for vmid 1; must not raise
    tlb.flush_vmid(2)
    assert tlb.flushes == 2
    assert len(tlb) == 0
