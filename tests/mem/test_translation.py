"""Two-stage translation: G-stage walks, VS-stage over G-stage, TLB, fences."""

import pytest

from repro.cycles import Category, CycleLedger, DEFAULT_COSTS
from repro.errors import TrapRaised
from repro.isa.hart import Hart
from repro.isa.pmp import PmpAddressMode, PmpEntry
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import AccessType, ExceptionCause
from repro.mem.pagetable import PTE_R, PTE_W, PTE_X, Sv39, Sv39x4
from repro.mem.physmem import PAGE_SIZE, MemoryBus, PhysicalMemory
from repro.mem.translation import AddressTranslator

BASE = 0x8000_0000


class RawAccessor:
    def __init__(self, dram):
        self.dram = dram

    def read_u64(self, addr):
        return self.dram.read_u64(addr)

    def write_u64(self, addr, value):
        self.dram.write_u64(addr, value)


@pytest.fixture
def env():
    dram = PhysicalMemory(BASE, 64 << 20)
    bus = MemoryBus(dram)
    ledger = CycleLedger()
    translator = AddressTranslator(bus, DEFAULT_COSTS, ledger)
    hart = Hart(0, ledger)
    hart.mode = PrivilegeMode.VS
    # Allow-all PMP background.
    hart.pmp.set_entry(
        15,
        PmpEntry(
            mode=PmpAddressMode.TOR, base=BASE, size=64 << 20,
            readable=True, writable=True, executable=True,
        ),
    )
    acc = RawAccessor(dram)
    cursor = [BASE + (4 << 20)]

    def table_alloc():
        pa = cursor[0]
        cursor[0] += PAGE_SIZE
        return pa

    root = BASE + (2 << 20)
    dram.zero_range(root, 16 * 1024)
    return dram, bus, ledger, translator, hart, acc, table_alloc, root


def test_bare_vs_stage_identity(env):
    dram, bus, ledger, tr, hart, acc, table_alloc, root = env
    Sv39x4().map(acc, root, 0x8000_0000, BASE + 0x100000, PTE_R | PTE_W, table_alloc)
    result = tr.translate(hart, 1, 0x8000_0123, AccessType.LOAD, root)
    assert result.pa == BASE + 0x100123
    assert result.gpa == 0x8000_0123
    assert not result.tlb_hit


def test_g_stage_miss_raises_guest_page_fault_with_gpa(env):
    _, _, _, tr, hart, _, _, root = env
    with pytest.raises(TrapRaised) as excinfo:
        tr.translate(hart, 1, 0x9999_0000, AccessType.STORE, root)
    assert excinfo.value.cause == ExceptionCause.STORE_GUEST_PAGE_FAULT
    assert excinfo.value.gpa == 0x9999_0000


def test_g_stage_permission_fault(env):
    _, _, _, tr, hart, acc, table_alloc, root = env
    Sv39x4().map(acc, root, 0x8000_0000, BASE + 0x100000, PTE_R, table_alloc)
    tr.translate(hart, 1, 0x8000_0000, AccessType.LOAD, root)
    with pytest.raises(TrapRaised) as excinfo:
        tr.translate(hart, 1, 0x8000_0000, AccessType.STORE, root)
    assert excinfo.value.cause == ExceptionCause.STORE_GUEST_PAGE_FAULT


def test_tlb_caches_translation(env):
    _, _, ledger, tr, hart, acc, table_alloc, root = env
    Sv39x4().map(acc, root, 0x8000_0000, BASE + 0x100000, PTE_R | PTE_W, table_alloc)
    first = tr.translate(hart, 1, 0x8000_0000, AccessType.LOAD, root)
    walk_cycles = ledger.by_category()[Category.PAGE_WALK]
    second = tr.translate(hart, 1, 0x8000_0008, AccessType.LOAD, root)
    assert second.tlb_hit
    assert second.pa == BASE + 0x100008
    assert ledger.by_category()[Category.PAGE_WALK] == walk_cycles  # no new walk


def test_hfence_gvma_flushes(env):
    _, _, _, tr, hart, acc, table_alloc, root = env
    Sv39x4().map(acc, root, 0x8000_0000, BASE + 0x100000, PTE_R, table_alloc)
    tr.translate(hart, 1, 0x8000_0000, AccessType.LOAD, root)
    tr.hfence_gvma()
    result = tr.translate(hart, 1, 0x8000_0000, AccessType.LOAD, root)
    assert not result.tlb_hit


def test_hfence_gvma_vmid_scoped(env):
    _, _, _, tr, hart, acc, table_alloc, root = env
    Sv39x4().map(acc, root, 0x8000_0000, BASE + 0x100000, PTE_R, table_alloc)
    tr.translate(hart, 1, 0x8000_0000, AccessType.LOAD, root)
    tr.translate(hart, 2, 0x8000_0000, AccessType.LOAD, root)
    tr.hfence_gvma(vmid=1)
    assert not tr.translate(hart, 1, 0x8000_0000, AccessType.LOAD, root).tlb_hit
    assert tr.translate(hart, 2, 0x8000_0000, AccessType.LOAD, root).tlb_hit


def test_permission_insufficient_tlb_entry_rewalks(env):
    """A TLB entry without W must not satisfy a store; hardware re-walks."""
    _, _, _, tr, hart, acc, table_alloc, root = env
    pt = Sv39x4()
    pt.map(acc, root, 0x8000_0000, BASE + 0x100000, PTE_R, table_alloc)
    tr.translate(hart, 1, 0x8000_0000, AccessType.LOAD, root)
    # Upgrade the PTE to writable; the stale TLB entry only has R.
    pt.set_flags(acc, root, 0x8000_0000, PTE_R | PTE_W)
    result = tr.translate(hart, 1, 0x8000_0000, AccessType.STORE, root)
    assert result.pa == BASE + 0x100000
    assert not result.tlb_hit


def test_final_access_pmp_checked(env):
    dram, _, _, tr, hart, acc, table_alloc, root = env
    # Map a GPA onto a PMP-protected frame.
    protected = BASE + 0x300000
    hart.pmp.set_entry(0, PmpEntry(mode=PmpAddressMode.TOR, base=protected, size=PAGE_SIZE))
    Sv39x4().map(acc, root, 0x8000_0000, protected, PTE_R | PTE_W, table_alloc)
    with pytest.raises(TrapRaised) as excinfo:
        tr.translate(hart, 1, 0x8000_0000, AccessType.LOAD, root)
    assert excinfo.value.cause == ExceptionCause.LOAD_ACCESS_FAULT


def test_vs_stage_translation_over_g_stage(env):
    """Guest paging: GVA -> (VS table) -> GPA -> (G table) -> PA."""
    dram, _, _, tr, hart, acc, table_alloc, root = env
    pt_g = Sv39x4()
    # Guest DRAM: GPA 0x8000_0000..+2MB -> host BASE+0x100000.
    for i in range(16):
        pt_g.map(
            acc, root, 0x8000_0000 + i * PAGE_SIZE,
            BASE + 0x100000 + i * PAGE_SIZE, PTE_R | PTE_W | PTE_X, table_alloc,
        )
    # The guest builds its own Sv39 table *inside guest memory* at GPA
    # 0x8000_0000 (host BASE+0x100000).
    guest_table_cursor = [0x8000_0000]

    def guest_table_alloc():
        gpa = guest_table_cursor[0]
        guest_table_cursor[0] += PAGE_SIZE
        return BASE + 0x100000 + (gpa - 0x8000_0000)  # host PA of that GPA

    class GuestAccessor:
        """Writes guest PTEs at host addresses, with GPA-valued targets."""

        def read_u64(self, addr):
            return dram.read_u64(addr)

        def write_u64(self, addr, value):
            dram.write_u64(addr, value)

    # Build VS-stage mapping GVA 0x40_0000 -> GPA 0x8000_8000 by hand:
    # root (GPA 0x8000_0000) must contain GPA-based pointers, so we write
    # PTEs whose targets are GPAs.
    vs_root_gpa = guest_table_cursor[0]
    guest_table_alloc()
    level1_gpa = guest_table_cursor[0]
    guest_table_alloc()
    level0_gpa = guest_table_cursor[0]
    guest_table_alloc()

    def host_of(gpa):
        return BASE + 0x100000 + (gpa - 0x8000_0000)

    gva = 0x0040_0000
    idx2 = (gva >> 30) & 0x1FF
    idx1 = (gva >> 21) & 0x1FF
    idx0 = (gva >> 12) & 0x1FF
    dram.write_u64(host_of(vs_root_gpa) + 8 * idx2, (level1_gpa >> 12) << 10 | 1)
    dram.write_u64(host_of(level1_gpa) + 8 * idx1, (level0_gpa >> 12) << 10 | 1)
    target_gpa = 0x8000_8000
    dram.write_u64(host_of(level0_gpa) + 8 * idx0, (target_gpa >> 12) << 10 | PTE_R | PTE_W | 1)

    result = tr.translate(hart, 1, gva, AccessType.LOAD, root, vsatp_root=vs_root_gpa)
    assert result.gpa == target_gpa
    assert result.pa == host_of(target_gpa)


def test_vs_stage_miss_is_ordinary_page_fault(env):
    dram, _, _, tr, hart, acc, table_alloc, root = env
    pt_g = Sv39x4()
    pt_g.map(acc, root, 0x8000_0000, BASE + 0x100000, PTE_R | PTE_W, table_alloc)
    # Empty VS root at GPA 0x8000_0000 (zeroed host page).
    with pytest.raises(TrapRaised) as excinfo:
        tr.translate(hart, 1, 0x7000, AccessType.LOAD, root, vsatp_root=0x8000_0000)
    assert excinfo.value.cause == ExceptionCause.LOAD_PAGE_FAULT


def test_gpa_to_pa_direct(env):
    _, _, _, tr, hart, acc, table_alloc, root = env
    Sv39x4().map(acc, root, 0x8000_0000, BASE + 0x100000, PTE_R, table_alloc)
    pa, flags = tr.gpa_to_pa(root, 0x8000_0040, AccessType.LOAD)
    assert pa == BASE + 0x100040
    assert flags & PTE_R
