"""The invariant checker: clean machines pass, corrupted ones report."""

import pytest

from repro import Machine, MachineConfig
from repro.mem.physmem import PAGE_SIZE
from repro.verify import assert_invariants, check_invariants


class TestCleanMachines:
    def test_fresh_machine(self, machine):
        assert check_invariants(machine) == []

    def test_after_single_cvm_run(self, machine):
        session = machine.launch_confidential_vm(image=b"clean" * 200)
        base = session.layout.dram_base + (8 << 20)
        machine.run(session, lambda ctx: ctx.write_bytes(base, b"data" * 100))
        assert_invariants(machine)

    def test_after_multi_tenant_io_scenario(self, machine):
        a = machine.launch_confidential_vm(image=b"a" * 8192)
        b = machine.launch_confidential_vm(image=b"b" * 8192)
        machine.attach_virtio_block(a)

        def io_workload(ctx):
            blk = ctx.blk_driver()
            blk.write(0, bytes(4096))
            blk.read(0, 4096)

        machine.run(a, io_workload)
        machine.run(b, lambda ctx: ctx.compute(100_000))
        assert_invariants(machine)

    def test_after_destroy(self, machine):
        session = machine.launch_confidential_vm(image=b"gone" * 500)
        machine.run(session, lambda ctx: ctx.compute(1000))
        machine.monitor.ecall_destroy(session.cvm.cvm_id)
        assert_invariants(machine)

    def test_after_pool_expansion(self):
        machine = Machine(MachineConfig(initial_pool_bytes=1 << 20))
        session = machine.launch_confidential_vm(image=b"x")
        from repro.workloads.memstress import sequential_write_stress

        machine.run(session, sequential_write_stress(600))
        assert machine.hypervisor.pool_expansions >= 1
        assert_invariants(machine)

    def test_after_migration(self, machine):
        from repro.sm.migration import derive_migration_key

        key = derive_migration_key(b"fleet", b"a", b"b")
        session = machine.launch_confidential_vm(image=b"mig" * 500)
        machine.run(session, lambda ctx: ctx.compute(1000))
        blob = machine.export_confidential_vm(session, key)
        assert_invariants(machine)  # source side clean after export
        destination = Machine(MachineConfig())
        destination.import_confidential_vm(blob, key)
        assert_invariants(destination)

    def test_normal_vms_do_not_trip_cvm_invariants(self, machine):
        session = machine.launch_normal_vm()
        base = session.layout.dram_base
        machine.run(session, lambda ctx: ctx.store(base + 0x5000, 1))
        assert_invariants(machine)


class TestCorruptionDetected:
    def test_cross_cvm_frame_sharing_detected(self, machine):
        """Forge a PTE in CVM A's table pointing at CVM B's frame."""
        a = machine.launch_confidential_vm(image=b"a" * 4096)
        b = machine.launch_confidential_vm(image=b"b" * 4096)
        from repro.mem.pagetable import Sv39x4

        class Raw:
            def read_u64(self, addr):
                return machine.dram.read_u64(addr)

            def write_u64(self, addr, value):
                machine.dram.write_u64(addr, value)

        b_frame = Sv39x4().walk(Raw(), b.cvm.hgatp_root, b.layout.dram_base).pa
        # Simulate an SM bug: bypass validation and map B's frame into A.
        Sv39x4().map(
            Raw(), a.cvm.hgatp_root, a.layout.dram_base + (64 << 20), b_frame,
            0b1110 | 0x10, lambda: machine.monitor._alloc_table_page(),
        )
        violations = check_invariants(machine)
        assert any("I3" in v or "I2" in v for v in violations)

    def test_shared_alias_detected(self, machine):
        session = machine.launch_confidential_vm(image=b"x")
        subtree = next(iter(session.handle.shared_subtrees.values()))
        pool_page = machine.monitor.pool.regions[0][0]
        level1 = (machine.dram.read_u64(subtree) >> 10) << 12
        machine.dram.write_u64(level1, (pool_page >> 12) << 10 | 0b10111 | 0x80)
        violations = check_invariants(machine)
        assert any("I4" in v for v in violations)

    def test_pmp_drift_detected(self, machine):
        from repro.isa.privilege import PrivilegeMode

        machine.launch_confidential_vm(image=b"x")
        # Simulate firmware corruption: the pool is left open on a hart
        # that resumes Normal-mode (HS) execution with no CVM running.
        machine.pmp_controller.open_pool(machine.harts[2])
        machine.harts[2].mode = PrivilegeMode.HS
        violations = check_invariants(machine)
        assert any("I5" in v for v in violations)

    def test_unscrubbed_free_page_detected(self, machine):
        page = machine.monitor.pool.pages_owned_by("free")[0]
        machine.dram.write(page, b"residual-secret")
        violations = check_invariants(machine)
        assert any("I7" in v for v in violations)

    def test_iopmp_gap_detected(self, machine):
        machine.iopmp.clear()  # a buggy SM forgot DMA coverage
        violations = check_invariants(machine)
        assert any("I6" in v for v in violations)

    def test_assert_raises_with_detail(self, machine):
        machine.iopmp.clear()
        with pytest.raises(AssertionError, match="I6"):
            assert_invariants(machine)
