"""Remote attestation protocol: handshake, policy, freshness, sealing."""

import pytest

from repro.attest_protocol import (
    AttestationError,
    GuestAttestationAgent,
    Verifier,
    agree_session_key,
    open_message,
    seal_message,
)

TRUSTED_IMAGE = b"trusted-guest-v1.2" * 100


@pytest.fixture
def deployed(machine):
    session = machine.launch_confidential_vm(image=TRUSTED_IMAGE)
    verifier = Verifier(
        platform_verifier=machine.monitor.attestation,
        trusted_measurements=[session.cvm.measurement],
    )
    return machine, session, verifier


def _handshake(machine, session, verifier):
    challenge = verifier.challenge()

    def workload(ctx):
        agent = GuestAttestationAgent(ctx)
        evidence = agent.respond(challenge)
        return agent, evidence

    agent, evidence = machine.run(session, workload)["workload_result"]
    verifier_share = verifier.verify(challenge, evidence)
    return agent, evidence, verifier_share


class TestHandshake:
    def test_successful_attestation_and_sealed_channel(self, deployed):
        machine, session, verifier = deployed
        agent, evidence, verifier_share = _handshake(machine, session, verifier)
        key = agree_session_key(agent, verifier_share)
        sealed = seal_message(key, b"database credentials: hunter2")
        assert b"hunter2" not in sealed
        assert open_message(key, sealed) == b"database credentials: hunter2"

    def test_untrusted_measurement_rejected(self, machine):
        rogue = machine.launch_confidential_vm(image=b"rogue-image" * 100)
        verifier = Verifier(
            platform_verifier=machine.monitor.attestation,
            trusted_measurements=[b"\x00" * 32],  # policy: something else
        )
        challenge = verifier.challenge()

        def workload(ctx):
            return GuestAttestationAgent(ctx).respond(challenge)

        evidence = machine.run(rogue, workload)["workload_result"]
        with pytest.raises(AttestationError, match="not in policy"):
            verifier.verify(challenge, evidence)

    def test_replayed_challenge_rejected(self, deployed):
        machine, session, verifier = deployed
        challenge = verifier.challenge()

        def workload(ctx):
            return GuestAttestationAgent(ctx).respond(challenge)

        evidence = machine.run(session, workload)["workload_result"]
        verifier.verify(challenge, evidence)
        with pytest.raises(AttestationError, match="replayed"):
            verifier.verify(challenge, evidence)

    def test_unknown_challenge_rejected(self, deployed):
        machine, session, verifier = deployed
        challenge = verifier.challenge()

        def workload(ctx):
            return GuestAttestationAgent(ctx).respond(challenge)

        evidence = machine.run(session, workload)["workload_result"]
        with pytest.raises(AttestationError, match="unknown"):
            verifier.verify(b"X" * 24, evidence)

    def test_evidence_bound_to_challenge(self, deployed):
        """Evidence for challenge A cannot satisfy challenge B."""
        machine, session, verifier = deployed
        challenge_a = verifier.challenge()
        challenge_b = verifier.challenge()

        def workload(ctx):
            return GuestAttestationAgent(ctx).respond(challenge_a)

        evidence = machine.run(session, workload)["workload_result"]
        with pytest.raises(AttestationError, match="bind"):
            verifier.verify(challenge_b, evidence)

    def test_swapped_guest_share_rejected(self, deployed):
        import dataclasses

        machine, session, verifier = deployed
        challenge = verifier.challenge()

        def workload(ctx):
            return GuestAttestationAgent(ctx).respond(challenge)

        evidence = machine.run(session, workload)["workload_result"]
        forged = dataclasses.replace(evidence, guest_share=b"\x41" * 32)
        with pytest.raises(AttestationError, match="bind"):
            verifier.verify(challenge, forged)

    def test_short_challenge_refused_by_guest(self, deployed):
        machine, session, _ = deployed

        def workload(ctx):
            with pytest.raises(AttestationError):
                GuestAttestationAgent(ctx).respond(b"short")

        machine.run(session, workload)

    def test_wrong_platform_rejected(self, deployed):
        """Evidence from a different machine's SM fails signature check."""
        from repro import Machine, MachineConfig

        machine, session, verifier = deployed
        other = Machine(MachineConfig())
        other_session = other.launch_confidential_vm(image=TRUSTED_IMAGE)
        # Same image, same measurement -- but another platform key...
        other.monitor.attestation._device_secret = b"other-device"
        challenge = verifier.challenge()

        def workload(ctx):
            return GuestAttestationAgent(ctx).respond(challenge)

        evidence = other.run(other_session, workload)["workload_result"]
        with pytest.raises(AttestationError, match="signature"):
            verifier.verify(challenge, evidence)


class TestSealing:
    def test_tampered_message_rejected(self):
        key = b"k" * 32
        sealed = bytearray(seal_message(key, b"payload"))
        sealed[0] ^= 1
        with pytest.raises(AttestationError):
            open_message(key, bytes(sealed))

    def test_wrong_key_rejected(self):
        sealed = seal_message(b"a" * 32, b"payload")
        with pytest.raises(AttestationError):
            open_message(b"b" * 32, sealed)

    def test_empty_message_roundtrip(self):
        key = b"k" * 32
        assert open_message(key, seal_message(key, b"")) == b""

    def test_short_blob_rejected(self):
        with pytest.raises(AttestationError):
            open_message(b"k" * 32, b"tiny")
