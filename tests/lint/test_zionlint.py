"""zionlint: rule triggers, pragma handling, baseline round-trip, live tree.

Fixtures are inline source files written under ``tmp_path`` in
directories named after the domains the engine routes on (``hyp/``,
``sm/``, ``mem/``), so each rule family is exercised both ways: code
that must trigger it and the minimal validated variant that must not.
"""

import json
import textwrap

import pytest

from repro.__main__ import main as cli_main
from repro.lint import run_lint, load_baseline, save_baseline
from repro.lint.engine import default_baseline_path


def _write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def _rules(report):
    return sorted({f.rule for f in report.new})


# -- ZL1: trust boundary ---------------------------------------------------


class TestZL1Boundary:
    def test_private_import_and_attr_flagged(self, tmp_path):
        _write(
            tmp_path,
            "hyp/bad.py",
            """
            import repro.sm.monitor
            from repro.sm.cvm import ConfidentialVm

            def adopt(monitor, cvm_id):
                return monitor.cvms[cvm_id]
            """,
        )
        report = run_lint([tmp_path])
        messages = [f.message for f in report.new]
        assert all(f.rule == "ZL1" for f in report.new)
        assert any("repro.sm.monitor" in m for m in messages)
        assert any("ConfidentialVm" in m for m in messages)
        assert any(".cvms" in m for m in messages)

    def test_sanctioned_surface_passes(self, tmp_path):
        _write(
            tmp_path,
            "hyp/good.py",
            """
            from repro.sm.abi import EXT_ZION_HOST, HostFunction, SbiError
            from repro.sm.cvm import GpaLayout
            from repro.sm.vcpu import SHARED_VCPU_FIELDS

            def adopt(monitor, cvm_id):
                descriptor = monitor.ecall_describe_cvm(cvm_id)
                return descriptor.layout, descriptor.vcpu_count
            """,
        )
        assert run_lint([tmp_path]).new == []

    def test_whole_package_import_flagged(self, tmp_path):
        _write(tmp_path, "guest/bad.py", "from repro import sm\n")
        report = run_lint([tmp_path])
        assert [f.rule for f in report.new] == ["ZL1"]

    def test_str_split_is_not_the_split_table_manager(self, tmp_path):
        _write(
            tmp_path,
            "workloads/ok.py",
            """
            def parse(line):
                return line.split(",")
            """,
        )
        assert run_lint([tmp_path]).new == []
        _write(
            tmp_path,
            "workloads/bad.py",
            """
            def meddle(monitor, cvm, gpa, pa, alloc):
                monitor.split.map_private(cvm, gpa, pa, alloc)
            """,
        )
        report = run_lint([tmp_path])
        assert any(f.rule == "ZL1" and ".split" in f.message for f in report.new)


# -- ZL2: check-after-load taint -------------------------------------------


class TestZL2Taint:
    def test_tainted_index_and_range_flagged(self, tmp_path):
        _write(
            tmp_path,
            "sm/bad.py",
            """
            class Monitor:
                def ecall_poke(self, vcpu_id, count):
                    slot = self.slots[vcpu_id]
                    for i in range(count):
                        slot += i
                    return slot
            """,
        )
        report = run_lint([tmp_path])
        messages = [f.message for f in report.new]
        assert all(f.rule == "ZL2" for f in report.new)
        assert any("vcpu_id" in m and "index" in m for m in messages)
        assert any("count" in m and "range" in m for m in messages)

    def test_guard_validates_for_fall_through(self, tmp_path):
        _write(
            tmp_path,
            "sm/good.py",
            """
            class Monitor:
                def ecall_poke(self, vcpu_id, count):
                    if not 0 <= vcpu_id < len(self.slots):
                        raise ValueError(vcpu_id)
                    if count > 64:
                        raise ValueError(count)
                    total = 0
                    for i in range(count):
                        total += self.slots[vcpu_id]
                    return total
            """,
        )
        assert run_lint([tmp_path]).new == []

    def test_sanitizer_call_cleans_names(self, tmp_path):
        _write(
            tmp_path,
            "sm/good2.py",
            """
            class Monitor:
                def ecall_map(self, cvm_id, gpa):
                    self._validate_window_gpa(gpa)
                    cvm = self._cvm(cvm_id)
                    return self.windows[gpa]
            """,
        )
        assert run_lint([tmp_path]).new == []

    def test_shared_load_branch_flagged_but_guard_ok(self, tmp_path):
        _write(
            tmp_path,
            "sm/shared.py",
            """
            class Switch:
                def resume(self, shared):
                    cause = shared.sm_read("exit_cause")
                    if cause == 7:
                        self.fire()
            """,
        )
        report = run_lint([tmp_path])
        assert any(
            f.rule == "ZL2" and "branch" in f.message for f in report.new
        )
        _write(
            tmp_path,
            "sm/shared.py",
            """
            class Switch:
                def resume(self, shared):
                    cause = shared.sm_read("exit_cause")
                    if cause not in (21, 23):
                        raise ValueError(cause)
                    if cause == 21:
                        self.fire()
            """,
        )
        assert run_lint([tmp_path]).new == []

    def test_tainted_address_to_raw_memory_flagged(self, tmp_path):
        _write(
            tmp_path,
            "sm/raw.py",
            """
            class Monitor:
                def ecall_peek(self, addr):
                    return self._dram.read_u64(addr)
            """,
        )
        report = run_lint([tmp_path])
        assert any(
            f.rule == "ZL2" and "raw" in f.message for f in report.new
        )

    def test_written_content_is_not_a_sink(self, tmp_path):
        # Host-supplied *data* may be written by design (image loading);
        # only the address/length positions are Check-after-Load's concern.
        _write(
            tmp_path,
            "sm/content.py",
            """
            class Monitor:
                def ecall_fill(self, data):
                    self.ledger.charge(1, len(data))
                    self._dram.write(self.scratch_base, data)
            """,
        )
        assert run_lint([tmp_path]).new == []


# -- ZL3: charging discipline ----------------------------------------------


class TestZL3Charging:
    def test_uncharged_raw_access_flagged(self, tmp_path):
        _write(
            tmp_path,
            "sm/touch.py",
            """
            class Thing:
                def peek(self):
                    return self._dram.read_u64(self.base)
            """,
        )
        report = run_lint([tmp_path])
        assert [f.rule for f in report.new] == ["ZL3"]

    def test_charge_and_precompiled_charger_pass(self, tmp_path):
        _write(
            tmp_path,
            "sm/touch.py",
            """
            class Direct:
                def peek(self):
                    self.ledger.charge(1, 2)
                    return self._dram.read_u64(self.base)

            class Precompiled:
                def peek(self):
                    self._charge_walk()
                    return self._dram.read_u64(self.base)
            """,
        )
        assert run_lint([tmp_path]).new == []

    def test_uncharged_walk_flagged_in_mem_domain(self, tmp_path):
        _write(
            tmp_path,
            "mem/walker.py",
            """
            class T:
                def lookup(self, root, gpa):
                    return self._sv39x4.walk(self._accessor, root, gpa)
            """,
        )
        report = run_lint([tmp_path])
        assert [f.rule for f in report.new] == ["ZL3"]

    def test_exempt_module_is_skipped(self, tmp_path):
        _write(
            tmp_path,
            "mem/physmem.py",
            """
            class Dram:
                def mirror(self):
                    return self._dram.read_u64(0)
            """,
        )
        assert run_lint([tmp_path]).new == []


# -- ZL4: PMP/TLB pairing --------------------------------------------------


class TestZL4Pairing:
    def test_unflushed_mutation_flagged(self, tmp_path):
        _write(
            tmp_path,
            "sm/maps.py",
            """
            class M:
                def remap(self, cvm, gpa, pa):
                    self.split.map_private(cvm, gpa, pa, self.alloc)
            """,
        )
        report = run_lint([tmp_path])
        assert [f.rule for f in report.new] == ["ZL4"]

    def test_same_function_flush_passes(self, tmp_path):
        _write(
            tmp_path,
            "sm/maps.py",
            """
            class M:
                def remap(self, cvm, gpa, pa):
                    self.split.map_private(cvm, gpa, pa, self.alloc)
                    self.translator.sfence_page(cvm.vmid, gpa)
            """,
        )
        assert run_lint([tmp_path]).new == []

    def test_direct_callee_flush_passes(self, tmp_path):
        _write(
            tmp_path,
            "sm/maps.py",
            """
            class M:
                def remap(self, cvm, gpa, pa):
                    self.split.map_private(cvm, gpa, pa, self.alloc)
                    self._finish(cvm, gpa)

                def _finish(self, cvm, gpa):
                    self.translator.sfence_page(cvm.vmid, gpa)
            """,
        )
        assert run_lint([tmp_path]).new == []


# -- pragmas and baseline --------------------------------------------------


class TestSuppression:
    def test_pragma_on_finding_line_suppresses_and_counts(self, tmp_path):
        _write(
            tmp_path,
            "sm/touch.py",
            """
            class Thing:
                def peek(self):
                    return self._dram.read_u64(self.base)  # zionlint: disable=ZL3 charged by the caller
            """,
        )
        report = run_lint([tmp_path])
        assert report.new == []
        assert [f.rule for f in report.pragma_suppressed] == ["ZL3"]

    def test_pragma_on_def_line_suppresses(self, tmp_path):
        _write(
            tmp_path,
            "sm/touch.py",
            """
            class Thing:
                def peek(self):  # zionlint: disable=ZL3 accessor charges per PTE
                    return self._dram.read_u64(self.base)
            """,
        )
        assert run_lint([tmp_path]).new == []

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        _write(
            tmp_path,
            "sm/touch.py",
            """
            class Thing:
                def peek(self):
                    return self._dram.read_u64(self.base)  # zionlint: disable=ZL1 wrong rule
            """,
        )
        assert [f.rule for f in run_lint([tmp_path]).new] == ["ZL3"]

    def test_pragma_without_reason_is_a_zl0_finding(self, tmp_path):
        _write(
            tmp_path,
            "sm/touch.py",
            """
            class Thing:
                def peek(self):
                    return self._dram.read_u64(self.base)  # zionlint: disable=ZL3
            """,
        )
        report = run_lint([tmp_path])
        assert [f.rule for f in report.new] == ["ZL0"]
        assert [f.rule for f in report.pragma_suppressed] == ["ZL3"]

    def test_baseline_round_trip(self, tmp_path):
        _write(
            tmp_path,
            "sm/touch.py",
            """
            class Thing:
                def peek(self):
                    return self._dram.read_u64(self.base)
            """,
        )
        baseline = tmp_path / "baseline.json"
        first = run_lint([tmp_path])
        assert len(first.new) == 1
        save_baseline(baseline, {f.key for f in first.new})
        second = run_lint([tmp_path], load_baseline(baseline))
        assert second.new == []
        assert [f.rule for f in second.baselined] == ["ZL3"]

    def test_baseline_key_survives_line_moves(self, tmp_path):
        source = """
        class Thing:
            def peek(self):
                return self._dram.read_u64(self.base)
        """
        _write(tmp_path, "sm/touch.py", source)
        keys = {f.key for f in run_lint([tmp_path]).new}
        _write(tmp_path, "sm/touch.py", "# a new comment line\n" + textwrap.dedent(source))
        assert {f.key for f in run_lint([tmp_path]).new} == keys


# -- CLI and live tree -----------------------------------------------------


class TestCliAndLiveTree:
    def test_cli_exits_nonzero_on_seeded_zl1_violation(self, tmp_path, capsys):
        # The pre-fix hypervisor pattern: reaching into monitor.cvms.
        _write(
            tmp_path,
            "hyp/adopt.py",
            """
            def host_adopt_cvm(monitor, cvm_id):
                cvm = monitor.cvms[cvm_id]
                return cvm
            """,
        )
        assert cli_main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "ZL1" in out and ".cvms" in out

    def test_cli_json_report(self, tmp_path, capsys):
        _write(
            tmp_path,
            "hyp/adopt.py",
            """
            def host_adopt_cvm(monitor, cvm_id):
                return monitor.cvms[cvm_id]
            """,
        )
        out_file = tmp_path / "report.json"
        rc = cli_main(
            ["lint", str(tmp_path / "hyp"), "--json", "--json-out", str(out_file)]
        )
        assert rc == 1
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(out_file.read_text())
        assert stdout_payload == file_payload
        assert file_payload["counts"]["new"] == {"ZL1": 1}
        (finding,) = file_payload["findings"]
        assert finding["rule"] == "ZL1"
        assert finding["why"]

    def test_cli_update_baseline_then_clean(self, tmp_path, capsys):
        _write(
            tmp_path,
            "sm/touch.py",
            """
            class Thing:
                def peek(self):
                    return self._dram.read_u64(self.base)
            """,
        )
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(
                ["lint", str(tmp_path), "--baseline", str(baseline), "--update-baseline"]
            )
            == 0
        )
        assert cli_main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_live_tree_has_no_unbaselined_findings(self):
        """The shipped tree lints clean against the committed baseline."""
        report = run_lint(None, load_baseline(default_baseline_path()))
        assert report.new == [], "\n".join(f.render() for f in report.new)

    def test_adopt_path_stays_lint_clean(self):
        """Pin the hypervisor.py:214 fix: no ZL1 findings in hyp/."""
        import repro.hyp

        from pathlib import Path

        hyp_dir = Path(repro.hyp.__file__).parent
        report = run_lint([hyp_dir])
        zl1 = [f for f in report.new if f.rule == "ZL1"]
        assert zl1 == [], "\n".join(f.render() for f in zl1)

    def test_committed_baseline_is_empty(self):
        """Every real finding was fixed or pragma'd with a reason."""
        assert load_baseline(default_baseline_path()) == set()
