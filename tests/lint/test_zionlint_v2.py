"""zionlint v2: interprocedural ZL2, path-sensitive ZL3, ZL5 discipline.

Same inline-fixture idiom as ``test_zionlint.py``: each case seeds a
minimal module under a routed domain directory and asserts the deeper
engine both *fires* where v1 was blind (taint through call hops,
charge-divergent branches, seam-bypassing mutation) and *stays quiet*
where the call graph proves the code sound (derived validators, charged
accessors, caller-side charging).
"""

import textwrap

from repro.lint import run_lint


def _write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def _rules(report):
    return sorted({f.rule for f in report.new})


# -- ZL2: interprocedural taint --------------------------------------------


class TestZL2Interprocedural:
    def test_taint_through_one_call_hop_hits_raw_mem(self, tmp_path):
        _write(
            tmp_path,
            "sm/one_hop.py",
            """
            class Monitor:
                def __init__(self, dram):
                    self._dram = dram

                def _read_guest_buffer(self, addr):
                    return self._dram.read(addr, 8)

                def ecall_copy(self, addr):
                    return self._read_guest_buffer(addr)
            """,
        )
        report = run_lint([tmp_path])
        hits = [f for f in report.new if f.rule == "ZL2"]
        assert len(hits) == 1
        assert hits[0].func == "Monitor.ecall_copy"
        assert "_read_guest_buffer" in hits[0].message

    def test_taint_through_two_call_hops(self, tmp_path):
        _write(
            tmp_path,
            "sm/two_hops.py",
            """
            class Monitor:
                def __init__(self, dram):
                    self._dram = dram

                def _inner(self, addr):
                    return self._dram.read_u64(addr)

                def _outer(self, addr):
                    return self._inner(addr)

                def ecall_peek(self, addr):
                    return self._outer(addr)
            """,
        )
        report = run_lint([tmp_path])
        hits = [f for f in report.new if f.rule == "ZL2"]
        assert [f.func for f in hits] == ["Monitor.ecall_peek"]
        assert "_outer" in hits[0].message

    def test_callee_guard_validates_caller_argument(self, tmp_path):
        _write(
            tmp_path,
            "sm/derived.py",
            """
            class Monitor:
                def __init__(self, dram):
                    self._dram = dram

                def _guest_pa(self, gpa):
                    if gpa > 4096:
                        raise ValueError("gpa out of range")
                    return 1000 + gpa

                def ecall_read(self, gpa):
                    pa = self._guest_pa(gpa)
                    return self._dram.read_u64(gpa)
            """,
        )
        report = run_lint([tmp_path])
        assert [f for f in report.new if f.rule == "ZL2"] == []

    def test_return_taint_propagates_to_range_sink(self, tmp_path):
        _write(
            tmp_path,
            "sm/ret_taint.py",
            """
            class Monitor:
                def _passthrough(self, n):
                    return n

                def ecall_fill(self, n):
                    total = 0
                    count = self._passthrough(n)
                    for i in range(count):
                        total += i
                    return total
            """,
        )
        report = run_lint([tmp_path])
        hits = [f for f in report.new if f.rule == "ZL2"]
        assert len(hits) == 1
        assert "range" in hits[0].message

    def test_shared_property_read_is_branch_sensitive(self, tmp_path):
        _write(
            tmp_path,
            "sm/prop.py",
            """
            class Ring:
                def __init__(self, ctx, base):
                    self.ctx = ctx
                    self.base = base

                @property
                def prod(self):
                    return self.ctx.load(self.base)

                def drain(self):
                    counter = self.prod
                    if counter > 4:
                        out = 1
                    else:
                        out = 0
                    return out
            """,
        )
        report = run_lint([tmp_path])
        hits = [f for f in report.new if f.rule == "ZL2"]
        assert len(hits) == 1
        assert "branch" in hits[0].message or "counter" in hits[0].message


# -- ZL3: path-sensitive charging ------------------------------------------


class TestZL3PathSensitive:
    def test_charge_on_one_branch_no_longer_excuses_sibling(self, tmp_path):
        _write(
            tmp_path,
            "sm/divergent.py",
            """
            class Store:
                def __init__(self, dram, ledger):
                    self._dram = dram
                    self._ledger = ledger

                def op(self, fast, addr):
                    if fast:
                        self._ledger.charge(1, 2)
                    else:
                        fast = not fast
                    return self._dram.read_u64(addr)
            """,
        )
        report = run_lint([tmp_path])
        assert _rules(report) == ["ZL3"]

    def test_charge_on_both_branches_covers_the_touch(self, tmp_path):
        _write(
            tmp_path,
            "sm/converged.py",
            """
            class Store:
                def __init__(self, dram, ledger):
                    self._dram = dram
                    self._ledger = ledger

                def op(self, fast, addr):
                    if fast:
                        self._ledger.charge(1, 2)
                    else:
                        self._ledger.charge(1, 3)
                    return self._dram.read_u64(addr)
            """,
        )
        report = run_lint([tmp_path])
        assert report.new == []

    def test_all_charging_callers_cover_a_helper(self, tmp_path):
        _write(
            tmp_path,
            "sm/callers.py",
            """
            class Store:
                def __init__(self, dram, ledger):
                    self._dram = dram
                    self._ledger = ledger

                def _slot_read(self, addr):
                    return self._dram.read_u64(addr)

                def fill(self, addr):
                    self._ledger.charge(1, 8)
                    return self._slot_read(addr)
            """,
        )
        report = run_lint([tmp_path])
        assert report.new == []

    def test_uncharged_caller_keeps_the_helper_flagged(self, tmp_path):
        _write(
            tmp_path,
            "sm/bad_caller.py",
            """
            class Store:
                def __init__(self, dram, ledger):
                    self._dram = dram
                    self._ledger = ledger

                def _slot_read(self, addr):
                    return self._dram.read_u64(addr)

                def fill(self, addr):
                    self._ledger.charge(1, 8)
                    return self._slot_read(addr)

                def peek(self, addr):
                    return self._slot_read(addr)
            """,
        )
        report = run_lint([tmp_path])
        assert _rules(report) == ["ZL3"]
        assert [f.func for f in report.new] == ["Store._slot_read"]

    def test_accessor_class_charged_by_its_walk_sites(self, tmp_path):
        _write(
            tmp_path,
            "sm/accessor.py",
            """
            class _Acc:
                def __init__(self, dram):
                    self._dram = dram

                def read_u64(self, addr):
                    return self._dram.read_u64(addr)

                def write_u64(self, addr, value):
                    self._dram.write_u64(addr, value)

            class Mgr:
                def __init__(self, dram, ledger, sv):
                    self._acc = _Acc(dram)
                    self._sv39x4 = sv
                    self._ledger = ledger

                def map_page(self, gpa, pa):
                    self._ledger.charge(3, 4)
                    self._sv39x4.map(self._acc, gpa, pa)
            """,
        )
        report = run_lint([tmp_path])
        assert report.new == []

    def test_bound_dram_method_is_a_typed_touch(self, tmp_path):
        _write(
            tmp_path,
            "sm/bound.py",
            """
            class Store:
                def __init__(self, dram):
                    self._poke_slot = dram.write_u64

                def poke(self, addr):
                    self._poke_slot(addr, 1)
            """,
        )
        report = run_lint([tmp_path])
        assert _rules(report) == ["ZL3"]
        assert report.new[0].func == "Store.poke"


# -- ZL5: concurrency discipline -------------------------------------------


class TestZL5Concurrency:
    def test_foreign_guarded_mutation_flagged_self_ok(self, tmp_path):
        _write(
            tmp_path,
            "sm/epoch.py",
            """
            class Monitor:
                def kick(self, split):
                    split.map_generation += 1

                def own(self):
                    self.map_generation += 1
            """,
        )
        report = run_lint([tmp_path])
        hits = [f for f in report.new if f.rule == "ZL5"]
        assert [f.func for f in hits] == ["Monitor.kick"]
        assert "map_generation" in hits[0].message

    def test_container_mutations_on_guarded_attrs_flagged(self, tmp_path):
        _write(
            tmp_path,
            "hyp/registry.py",
            """
            class Hyp:
                def stomp(self, handle, cvm):
                    handle.shared_subtrees.clear()
                    cvm.shared_subtrees[3] = 1
            """,
        )
        report = run_lint([tmp_path])
        hits = [f for f in report.new if f.rule == "ZL5"]
        assert len(hits) == 2

    def test_designated_seam_function_is_allowed(self, tmp_path):
        _write(
            tmp_path,
            "sm/share.py",
            """
            class SplitTableManager:
                def link_shared_subtree(self, cvm, root_index, table_pa):
                    cvm.shared_subtrees[root_index] = table_pa
            """,
        )
        report = run_lint([tmp_path])
        assert [f for f in report.new if f.rule == "ZL5"] == []

    def test_global_rebinding_flagged(self, tmp_path):
        _write(
            tmp_path,
            "sm/globals.py",
            """
            EPOCH = 0

            def bump():
                global EPOCH
                EPOCH += 1
            """,
        )
        report = run_lint([tmp_path])
        hits = [f for f in report.new if f.rule == "ZL5"]
        assert len(hits) == 1
        assert "global EPOCH" in hits[0].message

    def test_wall_clock_and_import_flagged_in_simulated_path(self, tmp_path):
        _write(
            tmp_path,
            "mem/clocky.py",
            """
            import time

            def stamp():
                return time.monotonic()
            """,
        )
        report = run_lint([tmp_path])
        hits = [f for f in report.new if f.rule == "ZL5"]
        assert len(hits) == 2
        assert any("import time" in f.message for f in hits)
        assert any("time.monotonic" in f.message for f in hits)

    def test_live_tree_is_zl5_clean(self):
        report = run_lint(None)
        assert [f for f in report.all_findings if f.rule == "ZL5"] == []


# -- ZL1: raw-DRAM denial ----------------------------------------------------


class TestZL1RawDram:
    def test_raw_dram_attribute_denied_in_hyp(self, tmp_path):
        _write(
            tmp_path,
            "hyp/scrub.py",
            """
            class Host:
                def __init__(self, bus):
                    self.bus = bus

                def scrub(self, pa):
                    self.bus.dram.zero_range(pa, 4096)
            """,
        )
        report = run_lint([tmp_path])
        hits = [f for f in report.new if f.rule == "ZL1"]
        assert len(hits) == 1
        assert ".dram" in hits[0].message
        assert "PMP" in hits[0].why

    def test_checked_bus_scrub_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "hyp/scrub_ok.py",
            """
            class Host:
                def __init__(self, bus, hart):
                    self.bus = bus
                    self.hart = hart

                def scrub(self, pa):
                    self.bus.cpu_zero_range(self.hart, pa, 4096)
            """,
        )
        report = run_lint([tmp_path])
        assert [f for f in report.new if f.rule == "ZL1"] == []


# -- diff-aware / strict CLI and the baseline ratchet ------------------------


class TestDiffAwareAndStrict:
    def test_only_filter_restricts_reporting_not_analysis(self, tmp_path):
        for name in ("alpha", "beta"):
            _write(
                tmp_path,
                f"hyp/{name}.py",
                """
                def leak(monitor):
                    return monitor.cvms
                """,
            )
        full = run_lint([tmp_path])
        assert len(full.new) == 2
        keep = full.new[0].path
        filtered = run_lint([tmp_path], only={keep})
        assert [f.path for f in filtered.new] == [keep]
        assert filtered.files == 1

    def test_cli_changed_mode_is_clean_on_live_tree(self):
        from repro.__main__ import main as cli_main

        assert cli_main(["lint", "--changed", "HEAD"]) == 0

    def test_cli_changed_bad_ref_is_usage_error(self, capsys):
        from repro.__main__ import main as cli_main

        assert cli_main(["lint", "--changed", "not-a-real-ref"]) == 2
        assert "git diff" in capsys.readouterr().err

    def test_cli_strict_live_tree_still_clean(self):
        # The committed baseline is empty, so strict mode must agree
        # with the normal gate on the live tree.
        from repro.__main__ import main as cli_main

        assert cli_main(["lint", "--strict"]) == 0

    def test_cli_strict_denies_baselined_findings(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        _write(
            tmp_path,
            "hyp/leaky.py",
            """
            def leak(monitor):
                return monitor.cvms
            """,
        )
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(
                ["lint", str(tmp_path / "hyp"), "--baseline", str(baseline),
                 "--update-baseline"]
            )
            == 0
        )
        assert (
            cli_main(["lint", str(tmp_path / "hyp"), "--baseline", str(baseline)])
            == 0
        )
        assert (
            cli_main(
                ["lint", str(tmp_path / "hyp"), "--baseline", str(baseline),
                 "--strict"]
            )
            == 1
        )

    def test_cli_changed_refuses_update_baseline(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        code = cli_main(
            ["lint", "--changed", "HEAD", "--update-baseline",
             "--baseline", str(tmp_path / "b.json")]
        )
        assert code == 2
        assert "--changed" in capsys.readouterr().err


class TestBaselineRatchet:
    def _module(self):
        import importlib.util
        import pathlib

        script = (
            pathlib.Path(__file__).resolve().parents[2]
            / "tools"
            / "check_baseline_ratchet.py"
        )
        spec = importlib.util.spec_from_file_location("ratchet", script)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def test_committed_baseline_is_within_the_pin(self, capsys):
        mod = self._module()
        assert mod.main() == 0

    def test_grown_baseline_fails(self, tmp_path, monkeypatch, capsys):
        import json

        mod = self._module()
        grown = tmp_path / "baseline.json"
        grown.write_text(
            json.dumps({"version": 1, "suppressions": ["ZL1|x|f|m"]})
        )
        monkeypatch.setattr(mod, "BASELINE", grown)
        assert mod.main() == 1
        assert "ratchet" in capsys.readouterr().out

    def test_unreadable_baseline_is_an_error(self, tmp_path, monkeypatch):
        mod = self._module()
        monkeypatch.setattr(mod, "BASELINE", tmp_path / "missing.json")
        assert mod.main() == 2
