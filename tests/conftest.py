"""Shared fixtures for the ZION reproduction test suite."""

from __future__ import annotations

import pytest

from repro import Machine, MachineConfig
from repro.cycles import DEFAULT_COSTS, CycleLedger


@pytest.fixture
def ledger():
    return CycleLedger()


@pytest.fixture
def costs():
    return DEFAULT_COSTS


@pytest.fixture
def machine():
    """A default machine (paper platform, shared vCPU, short path)."""
    return Machine(MachineConfig())


@pytest.fixture
def small_machine():
    """A machine with a small pool so stage-3 expansion is easy to reach."""
    return Machine(MachineConfig(initial_pool_bytes=2 << 20))


@pytest.fixture
def cvm_session(machine):
    return machine.launch_confidential_vm(image=b"test-guest-image" * 64)


@pytest.fixture
def normal_session(machine):
    return machine.launch_normal_vm("test-vm")
