"""Fleet orchestrator tests."""
