"""Fleet orchestrator: rebalancing, arrival attestation, containment.

Small fleets keep these fast; the CI ``fleet-smoke`` job and the
acceptance command run the full-size configuration.
"""

import pytest

from repro.errors import MigrationRejected, SecurityViolation
from repro.fleet import (
    FLEET_SECRET,
    FleetConfig,
    FleetOrchestrator,
    run_fleet_ablation,
    run_fleet_seed,
)
from repro.sm.cvm import CvmState
from repro.sm.migration import derive_migration_key

SMALL = dict(hosts=2, cvms=4, epochs=4, migration_rate=2)


def _small(seed=0, seams=("migration", "channel", "lifecycle")):
    return FleetConfig(seed=seed, seams=seams, **SMALL)


class TestSmoke:
    def test_small_fleet_completes_clean(self):
        result = FleetOrchestrator(_small(seams=None)).run()
        assert result.ok
        assert result.violations == []
        assert result.migrations >= 2
        assert result.arrivals == result.attest_checked
        assert all(d > 0 for d in result.downtimes)
        assert sum(result.ops_per_epoch) > 0

    def test_small_fleet_completes_under_faults(self):
        result = FleetOrchestrator(_small(seed=3)).run()
        assert result.ok, result.violations
        # Fault outcomes are typed, never raw Python errors.
        for _index, error_type, _detail in result.failed:
            assert error_type in ("SecurityViolation", "MigrationRejected",
                                  "PoolExhausted", "EcallError")

    def test_pairs_park_on_doorbells(self):
        """Ping/pong pairs drive the scheduler's park/wake accounting."""
        result = FleetOrchestrator(_small(seams=None)).run()
        assert result.sched["parks"] > 0
        assert result.sched["wakes"] + result.sched["wake_all_calls"] > 0

    def test_memory_integrity_verified_across_migrations(self):
        """Guest counters survive migration; expectations match serving."""
        orchestrator = FleetOrchestrator(_small(seams=None))
        result = orchestrator.run()
        assert result.migrations > 0
        migrated = [r for r in orchestrator.records if r.migrations > 0]
        assert migrated
        for record in migrated:
            assert record.alive
            assert record.expected_counter > 0


class TestDeterminism:
    def test_same_seed_same_run(self):
        a = FleetOrchestrator(_small(seed=7)).run()
        b = FleetOrchestrator(_small(seed=7)).run()
        assert a.summary() == b.summary()
        assert a.downtimes == b.downtimes
        assert a.ops_per_epoch == b.ops_per_epoch
        assert a.failed == b.failed
        assert a.ferry_faults == b.ferry_faults

    def test_different_seeds_diverge(self):
        a = FleetOrchestrator(_small(seed=1)).run()
        b = FleetOrchestrator(_small(seed=2)).run()
        assert a.plan != b.plan


class TestArrivalAttestation:
    def test_impostor_blob_rejected_with_typed_error(self):
        """A validly-sealed decoy fails the measurement gate, cleanly."""
        orchestrator = FleetOrchestrator(_small(seams=None))
        orchestrator.launch()
        record = orchestrator.records[0]
        src, dst = record.host, orchestrator.hosts[1]
        key = derive_migration_key(FLEET_SECRET, src.nonce, dst.nonce)

        decoy = src.machine.launch_confidential_vm(image=b"decoy-guest" * 30)
        blob = src.machine.export_confidential_vm(decoy, key)
        live_before = {
            cvm_id for cvm_id, cvm in dst.machine.monitor.cvms.items()
            if cvm.state is not CvmState.DESTROYED
        }
        with pytest.raises(MigrationRejected) as excinfo:
            orchestrator._import_and_attest(dst, blob, key, record)
        assert "mismatch" in str(excinfo.value)
        # The rejected arrival was destroyed: the destination's resident
        # CVMs are untouched and no new live CVM appeared.
        live_after = {
            cvm_id for cvm_id, cvm in dst.machine.monitor.cvms.items()
            if cvm.state is not CvmState.DESTROYED
        }
        assert live_after == live_before
        orchestrator.sweep("test:")
        assert orchestrator.violations == []

    def test_genuine_arrival_passes_the_gate(self):
        orchestrator = FleetOrchestrator(_small(seams=None))
        orchestrator.launch()
        record = orchestrator.records[0]
        dst = orchestrator.hosts[1]
        assert orchestrator.migrate(record, dst)
        assert record.host is dst
        assert orchestrator.attest_checked == orchestrator.arrivals == 1
        orchestrator.sweep("test:")
        assert orchestrator.violations == []

    def test_every_arrival_is_checked_in_a_full_run(self):
        result = FleetOrchestrator(_small(seed=5)).run()
        assert result.attest_checked == result.arrivals


class TestContainment:
    def test_tampered_blob_loses_one_cvm_not_the_host(self):
        orchestrator = FleetOrchestrator(_small(seams=None))
        orchestrator.launch()
        record = orchestrator.records[0]
        src, dst = record.host, orchestrator.hosts[1]
        key = derive_migration_key(FLEET_SECRET, src.nonce, dst.nonce)
        blob = bytearray(src.machine.export_confidential_vm(record.session, key))
        blob[len(blob) // 2] ^= 0x10
        with pytest.raises(SecurityViolation):
            orchestrator._import_and_attest(dst, bytes(blob), key, record)
        # Fail-stop: that CVM is gone, both hosts stay invariant-clean
        # and every surviving CVM keeps serving.
        record.alive = False
        orchestrator.sweep("test:")
        assert orchestrator.violations == []
        survivors = [r for r in orchestrator.records if r.alive]
        assert len(survivors) == len(orchestrator.records) - 1
        for survivor in survivors:
            host = survivor.host
            host.machine.run_concurrent(
                orchestrator._burst_pairs(host), on_error="contain",
                wake_priority=True,
            )
            break  # one serving round over the source host suffices

    def test_failed_migration_recorded_as_typed_failure_in_run(self):
        """Across seeds, ferry faults surface as typed failures only."""
        saw_failure = False
        for seed in range(4):
            result = FleetOrchestrator(
                FleetConfig(seed=seed, seams=("migration",), **SMALL)
            ).run()
            assert result.ok, result.violations
            saw_failure = saw_failure or bool(result.failed)
        assert saw_failure  # migration-seam plans do strike within 4 seeds


class TestModuleRunners:
    def test_run_fleet_seed_passthrough(self):
        result = run_fleet_seed(0, epochs=3, **{k: v for k, v in SMALL.items()
                                                if k != "epochs"})
        assert result.epochs == 3
        assert result.hosts == SMALL["hosts"]

    def test_ablation_grid_shape(self):
        cells = run_fleet_ablation(rates=(1, 2), sizes=((2, 4),), epochs=3)
        assert len(cells) == 2
        for cell in cells:
            assert cell["violations"] == 0
            assert set(cell) >= {"hosts", "cvms", "migration_rate",
                                 "migrations", "downtime_mean_cycles",
                                 "throughput_dip_pct"}
        # More rebalancing -> at least as many migrations.
        assert cells[1]["migrations"] >= cells[0]["migrations"]
